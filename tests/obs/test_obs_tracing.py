"""Per-query tracing: span semantics, the phase-sum contract, bit-identity.

The two acceptance properties of the tracing layer:

* **accounting** — for a traced ``knn``, the phase spans partition the
  call's wall time: ``|wall - sum(phases)| <= max(0.1 * wall, 1 ms)``;
* **non-interference** — answers are bit-identical with tracing on and
  off, across the static, dynamic, and sharded engines and across worker
  counts.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import random_walk
from repro.index.dynamic import DynamicIndex
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex
from repro.obs.trace import Span, Trace


def assert_phases_partition_wall(trace: Trace, wall: float) -> None:
    phase_sum = trace.phase_seconds()
    assert abs(wall - phase_sum) <= max(0.1 * wall, 1e-3), (
        f"phases sum to {phase_sum:.6f}s against wall {wall:.6f}s")


class TestTrace:
    def test_phase_and_detail_kinds(self):
        trace = Trace()
        trace.add_phase("traversal", 0.5, leaves=3)
        trace.add_detail("shard0", 0.4, answered=True)
        kinds = {span.name: span.kind for span in trace.spans}
        assert kinds == {"traversal": "phase", "shard0": "detail"}
        # Details are excluded from the phase accounting.
        assert trace.phase_seconds() == pytest.approx(0.5)

    def test_breakdown_merges_by_name_in_first_seen_order(self):
        trace = Trace()
        trace.add_phase("b", 1.0)
        trace.add_phase("a", 2.0)
        trace.add_phase("b", 3.0)
        assert trace.breakdown() == {"b": 4.0, "a": 2.0}
        assert list(trace.breakdown()) == ["b", "a"]

    def test_context_managers_time_their_block(self):
        trace = Trace()
        with trace.phase("work"):
            pass
        with trace.detail("inner"):
            pass
        spans = {span.name: span for span in trace.spans}
        assert spans["work"].kind == "phase"
        assert spans["inner"].kind == "detail"
        assert spans["work"].seconds >= 0.0

    def test_to_dict_coerces_counters(self):
        trace = Trace()
        trace.add_phase("p", 0.1, leaves=np.int64(3), ratio=np.float64(0.5),
                        flag=True)
        (span,) = trace.to_dict()["spans"]
        assert span["counters"] == {"leaves": 3, "ratio": 0.5, "flag": 1}
        assert all(isinstance(v, (int, float))
                   for v in span["counters"].values())

    def test_concurrent_recording_is_safe(self):
        trace = Trace()
        threads = [threading.Thread(
            target=lambda: [trace.add_detail("d") for _ in range(500)])
            for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trace.spans) == 2000

    def test_span_dataclass_defaults(self):
        span = Span("x", 1.0)
        assert span.kind == "phase"
        assert span.to_dict() == {"name": "x", "seconds": 1.0,
                                  "kind": "phase"}


ROWS = random_walk(240, 64, seed=2201)
QUERIES = random_walk(8, 64, seed=2202)


@pytest.fixture(scope="module")
def static_engine():
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=16).build(ROWS)


@pytest.fixture(scope="module")
def dynamic_engine():
    engine = DynamicIndex(
        SofaIndex(word_length=8, alphabet_size=16, leaf_size=16).build(ROWS))
    engine.insert_batch(random_walk(30, 64, seed=2203))
    engine.delete(5)
    return engine


@pytest.fixture(scope="module")
def sharded_engine(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs-shards")
    return ShardedIndex.build(ROWS, path, num_shards=3)


@pytest.fixture(scope="module")
def engines(static_engine, dynamic_engine, sharded_engine):
    return {"static": static_engine, "dynamic": dynamic_engine,
            "sharded": sharded_engine}


class TestEngineTracing:
    @pytest.mark.parametrize("engine_name", ["static", "dynamic", "sharded"])
    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_phases_partition_wall_time(self, engines, engine_name,
                                        num_workers):
        engine = engines[engine_name]
        engine.knn(QUERIES[0], k=3, num_workers=num_workers)  # warm caches
        for query in QUERIES[:4]:
            trace = Trace()
            result = engine.knn(query, k=3, num_workers=num_workers,
                                trace=trace)
            assert trace.phase_seconds() > 0.0
            assert_phases_partition_wall(trace, result.stats.wall_time_s)

    @pytest.mark.parametrize("engine_name", ["static", "dynamic", "sharded"])
    @pytest.mark.parametrize("num_workers", [1, 4])
    def test_tracing_never_changes_answers(self, engines, engine_name,
                                           num_workers):
        engine = engines[engine_name]
        for query in QUERIES:
            untraced = engine.knn(query, k=5, num_workers=num_workers)
            traced = engine.knn(query, k=5, num_workers=num_workers,
                                trace=Trace())
            np.testing.assert_array_equal(traced.indices, untraced.indices)
            np.testing.assert_array_equal(traced.distances,
                                          untraced.distances)

    @given(seed=st.integers(0, 10_000), k=st.integers(1, 10),
           num_workers=st.sampled_from([1, 2, 4]))
    @settings(max_examples=25, deadline=None)
    def test_bit_identity_property(self, static_engine, dynamic_engine,
                                   seed, k, num_workers):
        """Random queries: tracing is invisible in the answer, everywhere."""
        query = random_walk(1, 64, seed=seed)[0]
        for engine in (static_engine, dynamic_engine):
            untraced = engine.knn(query, k=k, num_workers=num_workers)
            traced = engine.knn(query, k=k, num_workers=num_workers,
                                trace=Trace())
            np.testing.assert_array_equal(traced.indices, untraced.indices)
            np.testing.assert_array_equal(traced.distances,
                                          untraced.distances)

    def test_sharded_trace_has_per_shard_details(self, sharded_engine):
        trace = Trace()
        sharded_engine.knn(QUERIES[0], k=3, trace=trace)
        details = {span.name for span in trace.spans
                   if span.kind == "detail"}
        assert {"shard0", "shard1", "shard2"} <= details
        phases = list(trace.breakdown())
        assert phases[0] == "normalize"
        assert "scatter" in phases and "merge" in phases

    def test_dynamic_trace_carries_delta_phase(self, dynamic_engine):
        trace = Trace()
        dynamic_engine.knn(QUERIES[0], k=3, num_workers=1, trace=trace)
        assert "delta" in trace.breakdown()

    def test_batch_results_carry_batch_wall_time(self, static_engine,
                                                 sharded_engine):
        for engine in (static_engine, sharded_engine):
            results = engine.knn_batch(QUERIES[:4], k=3)
            walls = {result.stats.wall_time_s for result in results}
            assert len(walls) == 1, "every result carries the batch wall"
            assert walls.pop() > 0.0
