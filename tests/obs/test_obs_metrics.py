"""The metrics registry: semantics, thread-safety, Prometheus exposition."""

from __future__ import annotations

import math
import threading

import pytest

from repro.core.errors import InvalidParameterError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text format 0.0.4 into ``{series: value}`` plus meta.

    A strict-enough parser for the tests: every non-comment line must be
    ``name{labels} value`` or ``name value``, every samples block must be
    preceded by its ``# HELP``/``# TYPE`` pair, and histogram buckets must
    be cumulative and end with ``+Inf``.
    """
    samples: "dict[str, float]" = {}
    meta: "dict[str, tuple[str, str]]" = {}
    pending_help: "dict[str, str]" = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            pending_help[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, metric_type = rest.partition(" ")
            assert name in pending_help, f"TYPE before HELP for {name}"
            assert metric_type in ("counter", "gauge", "histogram")
            meta[name] = (metric_type, pending_help[name])
            continue
        assert not line.startswith("#"), f"unexpected comment: {line!r}"
        series, _, value = line.rpartition(" ")
        assert series, f"malformed sample line: {line!r}"
        base = series.split("{", 1)[0]
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in meta:
                family = base[: -len(suffix)]
        assert family in meta, f"sample {series!r} has no TYPE metadata"
        samples[series] = float(value)
    return {"samples": samples, "meta": meta}


class TestCounter:
    def test_counts_and_sums_across_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000

    def test_negative_increment_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError, match="monotonic"):
            registry.counter("t_total", "help").inc(-1)

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "help", labelnames=("op",))
        family.labels(op="a").inc(2)
        family.labels(op="b").inc(3)
        assert family.labels(op="a").value() == 2
        assert family.labels(op="b").value() == 3

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "help", labelnames=("op",))
        with pytest.raises(InvalidParameterError, match="takes labels"):
            family.labels(shard="0")
        with pytest.raises(InvalidParameterError, match="use .labels"):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t", "help")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value() == 4.0

    def test_callback_gauge_computes_at_read(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t", "help")
        state = {"v": 1}
        gauge.set_function(lambda: state["v"])
        assert gauge.value() == 1.0
        state["v"] = 7
        assert gauge.value() == 7.0

    def test_dead_callback_renders_nan_not_crash(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t", "help")
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value())
        assert "t" in registry.render()


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        counts, total, count = histogram.snapshot()
        assert counts == [1, 2, 1]  # per-bucket, not yet cumulative
        assert count == 4
        assert total == pytest.approx(6.05)
        parsed = parse_exposition(registry.render())
        assert parsed["samples"]['t_bucket{le="0.1"}'] == 1
        assert parsed["samples"]['t_bucket{le="1"}'] == 3
        assert parsed["samples"]['t_bucket{le="+Inf"}'] == 4
        assert parsed["samples"]["t_count"] == 4

    def test_boundary_lands_in_its_bucket(self):
        """An observation equal to an upper bound belongs to that bucket."""
        registry = MetricsRegistry()
        histogram = registry.histogram("t", "help", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.snapshot()[0] == [1, 0, 0]

    def test_default_buckets_cover_query_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_redeclaring_same_family_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "help", labelnames=("op",))
        second = registry.counter("t_total", "other help", labelnames=("op",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "help")
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.gauge("t_total", "help")
        with pytest.raises(InvalidParameterError, match="already registered"):
            registry.counter("t_total", "help", labelnames=("op",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        for bad in ("", "0abc", "a-b", "a b", "a{b}"):
            with pytest.raises(InvalidParameterError, match="invalid metric"):
                registry.counter(bad, "help")

    def test_kill_switch_stops_writes(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help")
        histogram = registry.histogram("h", "help", buckets=(1.0,))
        counter.inc()
        registry.set_enabled(False)
        counter.inc(100)
        histogram.observe(0.5)
        assert counter.value() == 1
        assert histogram.value() == 0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value() == 2

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "help", labelnames=("name",))
        family.labels(name='we"ird\\x\n').inc()
        rendered = registry.render()
        assert '\\"' in rendered and "\\\\" in rendered and "\\n" in rendered

    def test_render_is_parseable_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts").inc(3)
        registry.gauge("g", "gauges").set(1.5)
        registry.histogram("h", "times", buckets=(0.5,)).observe(0.1)
        parsed = parse_exposition(registry.render())
        assert parsed["meta"]["c_total"] == ("counter", "counts")
        assert parsed["meta"]["g"] == ("gauge", "gauges")
        assert parsed["meta"]["h"] == ("histogram", "times")
        assert parsed["samples"]["c_total"] == 3
        assert parsed["samples"]["g"] == 1.5

    def test_default_registry_is_shared_and_enabled(self):
        assert get_registry() is get_registry()
        assert get_registry().enabled


class TestConcurrency:
    def test_render_during_concurrent_writes(self):
        """A scrape racing writers must never crash or go backwards."""
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        histogram = registry.histogram("h", "help", buckets=(0.5,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                counter.inc()
                histogram.observe(0.1)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        last = -1.0
        try:
            for _ in range(50):
                parsed = parse_exposition(registry.render())
                value = parsed["samples"]["c_total"]
                assert value >= last, "counter went backwards across scrapes"
                last = value
        finally:
            stop.set()
            for thread in threads:
                thread.join()
