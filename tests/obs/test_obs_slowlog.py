"""The structured slow-query log: threshold, entry shape, file sink, ring."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import InvalidParameterError
from repro.index.search import SearchStats
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Trace


def make_stats(**overrides) -> SearchStats:
    stats = SearchStats()
    stats.leaves_visited = 7
    stats.series_lower_bounds = 120
    stats.exact_distances = 40
    stats.wall_time_s = 0.5
    for name, value in overrides.items():
        setattr(stats, name, value)
    return stats


class TestThreshold:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError, match="threshold"):
            SlowQueryLog(0.0)
        with pytest.raises(InvalidParameterError, match="threshold"):
            SlowQueryLog(-1.0)
        with pytest.raises(InvalidParameterError, match="capacity"):
            SlowQueryLog(1.0, capacity=0)

    def test_fast_queries_are_not_logged(self):
        log = SlowQueryLog(0.1)
        assert log.observe(index="i", wall_time_s=0.05, k=1) is None
        assert log.logged == 0
        assert log.recent() == []

    def test_threshold_is_inclusive(self):
        log = SlowQueryLog(0.1)
        assert log.observe(index="i", wall_time_s=0.1, k=1) is not None
        assert log.logged == 1


class TestEntryShape:
    def test_minimal_entry(self):
        log = SlowQueryLog(0.1)
        entry = log.observe(index="lendb", wall_time_s=0.25, k=5)
        assert entry["index"] == "lendb"
        assert entry["k"] == 5
        assert entry["wall_time_s"] == 0.25
        assert "ts" in entry
        assert "breakdown" not in entry and "phases" not in entry

    def test_stats_add_breakdown_and_work(self):
        log = SlowQueryLog(0.1)
        entry = log.observe(index="i", wall_time_s=0.5, k=1,
                            stats=make_stats())
        assert entry["timed_out"] is False
        assert entry["work"] == {"leaves_visited": 7,
                                 "series_lower_bounds": 120,
                                 "exact_distances": 40}
        assert set(entry["breakdown"]) == {"approximate_s", "traversal_s",
                                           "refinement_s", "engine_wall_s"}

    def test_trace_adds_phases_and_spans(self):
        trace = Trace()
        trace.add_phase("traversal", 0.2, leaves=3)
        trace.add_detail("heap", 0.0, offers=9)
        log = SlowQueryLog(0.1)
        entry = log.observe(index="i", wall_time_s=0.5, k=1, trace=trace)
        assert entry["phases"] == {"traversal": 0.2}
        assert [span["name"] for span in entry["spans"]] == ["traversal",
                                                             "heap"]

    def test_entry_is_json_serializable(self):
        log = SlowQueryLog(0.1)
        entry = log.observe(index="i", wall_time_s=0.5, k=1,
                            stats=make_stats(), trace=Trace())
        json.dumps(entry)


class TestSinks:
    def test_file_sink_appends_one_json_line_per_entry(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.1, path=path)
        log.observe(index="a", wall_time_s=0.2, k=1)
        log.observe(index="b", wall_time_s=0.3, k=2, stats=make_stats())
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [entry["index"] for entry in parsed] == ["a", "b"]
        assert parsed[1]["work"]["exact_distances"] == 40

    def test_unwritable_path_never_fails_the_query(self, tmp_path):
        log = SlowQueryLog(0.1, path=tmp_path / "missing-dir" / "slow.jsonl")
        entry = log.observe(index="i", wall_time_s=0.5, k=1)
        assert entry is not None
        assert log.logged == 1  # in-memory ring still works

    def test_ring_is_bounded_but_counter_is_total(self):
        log = SlowQueryLog(0.1, capacity=3)
        for position in range(10):
            log.observe(index=f"i{position}", wall_time_s=0.2, k=1)
        assert log.logged == 10
        recent = log.recent()
        assert [entry["index"] for entry in recent] == ["i7", "i8", "i9"]
