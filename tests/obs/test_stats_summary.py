"""``summarize_search_stats``: empty, single, degenerate, and random inputs.

The serving layer calls this on whatever happens to be accumulated — which
can be *nothing* (a ``/stats`` scrape before the first query), exactly one
part, or a workload where every query timed out.  Each shape must produce
the same well-formed report; no consumer should ever need an emptiness
special case.
"""

from __future__ import annotations

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.search import SearchStats
from repro.index.stats import merge_search_stats, summarize_search_stats

EXPECTED_KEYS = {
    "queries", "timed_out", "partial_answers", "series_served",
    "series_lower_bounds", "exact_distances", "leaves_visited",
    "shards_total", "shards_answered", "engine_time_s", "wall_time_s",
    "max_wall_time_s", "pruning_ratio", "coverage",
}


def stats_strategy() -> st.SearchStrategy:
    return st.builds(
        SearchStats,
        num_series=st.integers(0, 10_000),
        leaves_visited=st.integers(0, 500),
        series_lower_bounds=st.integers(0, 10_000),
        exact_distances=st.integers(0, 10_000),
        leaf_times=st.lists(st.floats(0.0, 0.1), max_size=5),
        timed_out=st.booleans(),
        shards_total=st.integers(0, 8),
        shards_answered=st.integers(0, 8),
        partial=st.booleans(),
        wall_time_s=st.floats(0.0, 10.0),
    )


class TestEmpty:
    def test_empty_iterable_yields_zeroed_summary(self):
        summary = summarize_search_stats([])
        assert set(summary) == EXPECTED_KEYS
        assert summary["queries"] == 0
        assert summary["wall_time_s"] == 0.0
        assert summary["max_wall_time_s"] == 0.0
        # Vacuous identities, not divisions by zero:
        assert summary["pruning_ratio"] == 0.0
        assert summary["coverage"] == 1.0
        json.dumps(summary)  # and it is JSON-ready as-is

    def test_empty_generator_too(self):
        assert summarize_search_stats(iter(())) == summarize_search_stats([])


class TestSingle:
    def test_single_part_round_trips(self):
        part = SearchStats(num_series=100, leaves_visited=3,
                           series_lower_bounds=80, exact_distances=20,
                           leaf_times=[0.01, 0.02], wall_time_s=0.25)
        summary = summarize_search_stats([part])
        assert summary["queries"] == 1
        assert summary["series_served"] == 100
        assert summary["exact_distances"] == 20
        assert summary["wall_time_s"] == 0.25
        assert summary["max_wall_time_s"] == 0.25
        assert summary["pruning_ratio"] == part.pruning_ratio
        assert summary["coverage"] == 1.0


class TestDegenerate:
    def test_all_timed_out(self):
        parts = [SearchStats(num_series=10, timed_out=True, wall_time_s=1.0)
                 for _ in range(4)]
        summary = summarize_search_stats(parts)
        assert summary["queries"] == 4
        assert summary["timed_out"] == 4
        assert summary["wall_time_s"] == 4.0
        assert summary["max_wall_time_s"] == 1.0

    def test_zero_series_served_keeps_ratios_finite(self):
        summary = summarize_search_stats([SearchStats()])
        assert summary["pruning_ratio"] == 0.0
        assert summary["coverage"] == 1.0


class TestProperties:
    @given(parts=st.lists(stats_strategy(), max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_summary_is_well_formed_for_any_input(self, parts):
        summary = summarize_search_stats(parts)
        assert set(summary) == EXPECTED_KEYS
        assert summary["queries"] == len(parts)
        assert summary["timed_out"] == sum(p.timed_out for p in parts)
        assert summary["wall_time_s"] == sum(p.wall_time_s for p in parts)
        assert summary["max_wall_time_s"] == (
            max((p.wall_time_s for p in parts), default=0.0))
        assert summary["max_wall_time_s"] <= summary["wall_time_s"] or \
            not parts
        assert 0.0 <= summary["pruning_ratio"] <= 1.0 or \
            summary["exact_distances"] > summary["series_served"]
        assert math.isfinite(summary["coverage"])
        json.dumps(summary)

    @given(parts=st.lists(stats_strategy(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_summarize_never_mutates_its_inputs(self, parts):
        snapshots = [
            (p.num_series, p.exact_distances, p.wall_time_s, p.timed_out)
            for p in parts]
        summarize_search_stats(parts)
        assert snapshots == [
            (p.num_series, p.exact_distances, p.wall_time_s, p.timed_out)
            for p in parts]


class TestMergeWallSemantics:
    def test_merge_keeps_targets_wall_time(self):
        """Worker lifetimes live inside the query's wall, never add to it."""
        into = SearchStats(wall_time_s=0.5, approximate_time=0.1)
        parts = [SearchStats(wall_time_s=0.4, leaves_visited=2,
                             leaf_times=[0.01]),
                 SearchStats(wall_time_s=0.3, leaves_visited=1)]
        merged = merge_search_stats(into, parts)
        assert merged is into
        assert merged.wall_time_s == 0.5
        assert merged.approximate_time == 0.1
        assert merged.leaves_visited == 3
