"""Tests for the DFT features and the Rafiei–Mendelzon lower bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.core.errors import InvalidParameterError
from repro.core.normalization import znormalize
from repro.transforms.dft import (
    DFT,
    component_weights,
    reconstruct_from_components,
    rfft_components,
)


class TestRfftComponents:
    def test_component_layout(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((5, 32))
        components, weights = rfft_components(matrix)
        assert components.shape == (5, 2 * (32 // 2 + 1))
        assert weights.shape == (components.shape[1],)

    def test_parseval_identity(self):
        """Sum of weighted squared components equals the squared norm."""
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((10, 64))
        components, weights = rfft_components(matrix)
        energy = np.sum(weights * components ** 2, axis=1)
        assert np.allclose(energy, np.sum(matrix ** 2, axis=1))

    def test_parseval_identity_odd_length(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((10, 63))
        components, weights = rfft_components(matrix)
        energy = np.sum(weights * components ** 2, axis=1)
        assert np.allclose(energy, np.sum(matrix ** 2, axis=1))

    def test_dc_and_nyquist_weights_are_one(self):
        weights = component_weights(64)
        assert weights[0] == weights[1] == 1.0
        assert weights[-2] == weights[-1] == 1.0
        assert np.all(weights[2:-2] == 2.0)

    def test_odd_length_has_no_nyquist(self):
        weights = component_weights(63)
        assert weights[0] == weights[1] == 1.0
        assert np.all(weights[2:] == 2.0)

    def test_dc_imaginary_part_is_zero(self):
        rng = np.random.default_rng(3)
        components, _ = rfft_components(rng.standard_normal((4, 16)))
        assert np.allclose(components[:, 1], 0.0)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            rfft_components(np.zeros(16))


class TestDftSummarization:
    def test_transform_length(self, walk_dataset):
        dft = DFT(word_length=10).fit(walk_dataset)
        assert dft.transform(walk_dataset[0]).shape == (10,)

    def test_skip_dc_excludes_first_components(self, walk_dataset):
        dft = DFT(word_length=6, skip_dc=True).fit(walk_dataset)
        assert dft.selected_components.min() >= 2

    def test_keep_dc_starts_at_zero(self, walk_dataset):
        dft = DFT(word_length=6, skip_dc=False).fit(walk_dataset)
        assert dft.selected_components.min() == 0

    def test_word_length_too_large_raises(self):
        with pytest.raises(InvalidParameterError):
            DFT(word_length=1000).fit(np.zeros((3, 16)))

    def test_lower_bound_property_on_znormalized_series(self, walk_dataset):
        dft = DFT(word_length=16).fit(walk_dataset)
        values = walk_dataset.values
        for i in range(0, 30, 2):
            a, b = values[i], values[i + 1]
            lower = dft.lower_bound(dft.transform(a), dft.transform(b))
            assert lower <= euclidean(a, b) + 1e-9

    def test_full_spectrum_lower_bound_is_exact(self):
        """Keeping every component makes the lower bound equal the distance."""
        rng = np.random.default_rng(4)
        matrix = np.vstack([znormalize(row) for row in rng.standard_normal((4, 32))])
        num_components = 2 * (32 // 2 + 1)
        dft = DFT(word_length=num_components, skip_dc=False).fit(matrix)
        a, b = matrix[0], matrix[1]
        lower = dft.lower_bound(dft.transform(a), dft.transform(b))
        assert lower == pytest.approx(euclidean(a, b))

    def test_reconstruction_round_trip_with_full_spectrum(self):
        rng = np.random.default_rng(5)
        series = rng.standard_normal(32)
        num_components = 2 * (32 // 2 + 1)
        dft = DFT(word_length=num_components, skip_dc=False).fit(series.reshape(1, -1))
        reconstruction = dft.reconstruct(dft.transform(series), 32)
        assert np.allclose(reconstruction, series)

    def test_reconstruction_partial_reduces_error_with_more_components(self, oscillatory_dataset):
        series = oscillatory_dataset[0]
        errors = []
        for word_length in (4, 8, 16, 32):
            dft = DFT(word_length=word_length).fit(oscillatory_dataset)
            reconstruction = dft.reconstruct(dft.transform(series), series.shape[0])
            errors.append(np.linalg.norm(series - reconstruction))
        assert errors[0] >= errors[-1]

    def test_requires_fit(self):
        with pytest.raises(InvalidParameterError):
            DFT().transform(np.zeros(16))


class TestReconstructFromComponents:
    def test_zero_components_give_zero_series(self):
        result = reconstruct_from_components(np.zeros(4), np.array([2, 3, 4, 5]), 16)
        assert np.allclose(result, 0.0)

    def test_selected_positions_are_respected(self):
        rng = np.random.default_rng(6)
        series = rng.standard_normal(16)
        components, _ = rfft_components(series.reshape(1, -1))
        selected = np.arange(components.shape[1])
        rebuilt = reconstruct_from_components(components[0], selected, 16)
        assert np.allclose(rebuilt, series)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=30),
       st.sampled_from([32, 48, 64, 100, 127]))
@settings(max_examples=40, deadline=None)
def test_dft_lower_bound_property(seed, word_length, length):
    """Property: the truncated-DFT distance lower-bounds the Euclidean distance."""
    rng = np.random.default_rng(seed)
    a = znormalize(rng.standard_normal(length))
    b = znormalize(rng.standard_normal(length))
    dft = DFT(word_length=word_length).fit(a.reshape(1, -1))
    lower = dft.lower_bound(dft.transform(a), dft.transform(b))
    assert lower <= euclidean(a, b) + 1e-9
