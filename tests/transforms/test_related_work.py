"""Tests for the related-work numeric summarizations: APCA, PLA, Chebyshev."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.core.errors import InvalidParameterError
from repro.transforms.apca import APCA, apca_transform
from repro.transforms.chebyshev import Chebyshev
from repro.transforms.pla import PLA, pla_transform


class TestApca:
    def test_transform_returns_segments_and_ends(self):
        series = np.concatenate([np.zeros(8), np.ones(8)])
        means, ends = apca_transform(series, 2)
        assert means.shape == (2,)
        assert ends[-1] == series.shape[0]
        assert means[0] == pytest.approx(0.0)
        assert means[1] == pytest.approx(1.0)

    def test_adaptive_segments_capture_step_changes(self):
        """APCA places a boundary at the discontinuity, unlike fixed PAA."""
        series = np.concatenate([np.zeros(10), np.full(3, 5.0), np.zeros(10)])
        means, ends = apca_transform(series, 3)
        assert 5.0 in np.round(means, 6)

    def test_invalid_segment_count_raises(self):
        with pytest.raises(InvalidParameterError):
            apca_transform(np.zeros(4), 0)

    def test_reconstruct_round_trip(self, walk_dataset):
        apca = APCA(num_segments=6).fit(walk_dataset)
        summary = apca.transform(walk_dataset[0])
        reconstruction = apca.reconstruct(summary, walk_dataset.series_length)
        assert reconstruction.shape == (walk_dataset.series_length,)

    def test_lower_bound_property(self, walk_dataset):
        apca = APCA(num_segments=6).fit(walk_dataset)
        values = walk_dataset.values
        for i in range(0, 16, 2):
            a, b = values[i], values[i + 1]
            lower = apca.lower_bound(apca.transform(a), apca.transform(b))
            assert lower <= euclidean(a, b) + 1e-9

    def test_word_length_counts_means_and_ends(self):
        assert APCA(num_segments=5).word_length == 10


class TestPla:
    def test_linear_series_is_reconstructed_exactly(self):
        series = np.linspace(0, 10, 32)
        pla = PLA(num_segments=4).fit(series.reshape(1, -1))
        reconstruction = pla.reconstruct(pla.transform(series), 32)
        assert np.allclose(reconstruction, series, atol=1e-8)

    def test_transform_shape(self, walk_dataset):
        pla = PLA(num_segments=8).fit(walk_dataset)
        assert pla.transform(walk_dataset[0]).shape == (16,)

    def test_lower_bound_property(self, walk_dataset):
        pla = PLA(num_segments=8).fit(walk_dataset)
        values = walk_dataset.values
        for i in range(0, 16, 2):
            a, b = values[i], values[i + 1]
            lower = pla.lower_bound(pla.transform(a), pla.transform(b))
            assert lower <= euclidean(a, b) + 1e-9

    def test_invalid_segments_raise(self):
        with pytest.raises(InvalidParameterError):
            PLA(num_segments=0)
        with pytest.raises(InvalidParameterError):
            pla_transform(np.zeros(4), 10)


class TestChebyshev:
    def test_transform_shape(self, walk_dataset):
        cheb = Chebyshev(word_length=10).fit(walk_dataset)
        assert cheb.transform(walk_dataset[0]).shape == (10,)

    def test_full_basis_reconstruction_is_exact(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(16)
        cheb = Chebyshev(word_length=16).fit(series.reshape(1, -1))
        reconstruction = cheb.reconstruct(cheb.transform(series), 16)
        assert np.allclose(reconstruction, series, atol=1e-8)

    def test_lower_bound_property(self, walk_dataset):
        cheb = Chebyshev(word_length=10).fit(walk_dataset)
        values = walk_dataset.values
        for i in range(0, 16, 2):
            a, b = values[i], values[i + 1]
            lower = cheb.lower_bound(cheb.transform(a), cheb.transform(b))
            assert lower <= euclidean(a, b) + 1e-9

    def test_full_basis_lower_bound_is_exact(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((2, 12))
        cheb = Chebyshev(word_length=12).fit(a.reshape(1, -1))
        lower = cheb.lower_bound(cheb.transform(a), cheb.transform(b))
        assert lower == pytest.approx(euclidean(a, b))

    def test_transform_batch_matches_single(self, walk_dataset):
        cheb = Chebyshev(word_length=6).fit(walk_dataset)
        batch = cheb.transform_batch(walk_dataset)
        singles = np.vstack([cheb.transform(row) for row in walk_dataset.values])
        assert np.allclose(batch, singles)

    def test_wrong_length_raises(self, walk_dataset):
        cheb = Chebyshev(word_length=6).fit(walk_dataset)
        with pytest.raises(InvalidParameterError):
            cheb.transform(np.zeros(walk_dataset.series_length + 1))


@given(st.integers(min_value=0, max_value=5000), st.integers(min_value=2, max_value=10))
@settings(max_examples=25, deadline=None)
def test_pla_and_chebyshev_lower_bound_property(seed, word):
    """Projection-based summaries always lower-bound the Euclidean distance."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(40)
    b = rng.standard_normal(40)
    pla = PLA(num_segments=word).fit(a.reshape(1, -1))
    cheb = Chebyshev(word_length=word).fit(a.reshape(1, -1))
    true = euclidean(a, b)
    assert pla.lower_bound(pla.transform(a), pla.transform(b)) <= true + 1e-9
    assert cheb.lower_bound(cheb.transform(a), cheb.transform(b)) <= true + 1e-9
