"""Tests for the SAX / iSAX summarization and its mindist lower bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.transforms.paa import paa_transform
from repro.transforms.sax import SAX, isax_mindist


class TestConstruction:
    def test_alphabet_must_be_power_of_two(self):
        with pytest.raises(InvalidParameterError):
            SAX(alphabet_size=100)

    def test_alphabet_must_be_at_least_two(self):
        with pytest.raises(InvalidParameterError):
            SAX(alphabet_size=1)

    def test_word_length_positive(self):
        with pytest.raises(InvalidParameterError):
            SAX(word_length=0)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            SAX().word(np.zeros(32))


class TestWords:
    def test_word_values_in_alphabet(self, walk_dataset):
        sax = SAX(word_length=8, alphabet_size=16).fit(walk_dataset)
        words = sax.words(walk_dataset)
        assert words.shape == (walk_dataset.num_series, 8)
        assert words.min() >= 0
        assert words.max() < 16

    def test_numeric_summary_is_paa(self, walk_dataset):
        sax = SAX(word_length=8).fit(walk_dataset)
        series = walk_dataset[0]
        assert np.allclose(sax.transform(series), paa_transform(series, 8))

    def test_word_of_constant_zero_series_is_middle_symbol(self, walk_dataset):
        sax = SAX(word_length=4, alphabet_size=8).fit(walk_dataset)
        word = sax.word(np.zeros(walk_dataset.series_length))
        # Zero falls exactly on the central Gaussian breakpoint; with half-open
        # bins it maps to the upper-middle symbol.
        assert np.all(word == 4)

    def test_word_to_string_small_alphabet(self, walk_dataset):
        sax = SAX(word_length=4, alphabet_size=8).fit(walk_dataset)
        rendered = sax.word_to_string(np.array([0, 1, 2, 7]))
        assert rendered == "abch"

    def test_word_to_string_large_alphabet(self, walk_dataset):
        sax = SAX(word_length=4, alphabet_size=256).fit(walk_dataset)
        rendered = sax.word_to_string(np.array([0, 10, 255, 3]))
        assert rendered == "0-10-255-3"


class TestMindist:
    def test_mindist_is_lower_bound(self, walk_dataset):
        """mindist(PAA(q), word(c)) <= d_ED(q, c) — the core GEMINI requirement."""
        sax = SAX(word_length=16, alphabet_size=64).fit(walk_dataset)
        values = walk_dataset.values
        words = sax.words(walk_dataset)
        for i in range(0, 30, 3):
            query = values[i]
            summary = sax.transform(query)
            for j in range(30, 50, 4):
                lower = np.sqrt(sax.mindist(summary, words[j]))
                assert lower <= euclidean(query, values[j]) + 1e-9

    def test_mindist_zero_for_own_word(self, walk_dataset):
        sax = SAX(word_length=8, alphabet_size=32).fit(walk_dataset)
        series = walk_dataset[0]
        assert sax.mindist(sax.transform(series), sax.word(series)) == pytest.approx(0.0)

    def test_mindist_batch_matches_single(self, walk_dataset):
        sax = SAX(word_length=8, alphabet_size=16).fit(walk_dataset)
        words = sax.words(walk_dataset)[:20]
        summary = sax.transform(walk_dataset[50])
        batch = sax.mindist_batch(summary, words)
        singles = np.array([sax.mindist(summary, word) for word in words])
        assert np.allclose(batch, singles)

    def test_reduced_cardinality_loosens_the_bound(self, walk_dataset):
        sax = SAX(word_length=8, alphabet_size=256).fit(walk_dataset)
        summary = sax.transform(walk_dataset[0])
        word = sax.word(walk_dataset[33])
        full = sax.mindist(summary, word)
        for bits in (4, 2, 1):
            coarse_word = word >> (8 - bits)
            coarse = sax.mindist(summary, coarse_word, cardinality_bits=bits)
            assert coarse <= full + 1e-12
            full = coarse  # bounds shrink monotonically as cardinality drops

    def test_isax_mindist_helper(self, walk_dataset):
        sax = SAX(word_length=8, alphabet_size=16).fit(walk_dataset)
        summary = sax.transform(walk_dataset[1])
        word = sax.word(walk_dataset[2])
        assert isax_mindist(summary, word, sax) == pytest.approx(
            np.sqrt(sax.mindist(summary, word)))

    def test_larger_alphabet_tightens_the_bound_on_average(self, oscillatory_dataset):
        values = oscillatory_dataset.values
        bounds = {}
        for alphabet in (4, 256):
            sax = SAX(word_length=16, alphabet_size=alphabet).fit(oscillatory_dataset)
            words = sax.words(oscillatory_dataset)
            total = 0.0
            for i in range(10):
                summary = sax.transform(values[i])
                total += float(np.sqrt(sax.mindist_batch(summary, words[50:])).mean())
            bounds[alphabet] = total
        assert bounds[256] >= bounds[4]


class TestLowerBoundNumericSummaries:
    def test_paa_lower_bound_between_summaries(self, walk_dataset):
        sax = SAX(word_length=8).fit(walk_dataset)
        a, b = walk_dataset[0], walk_dataset[1]
        lower = sax.lower_bound(sax.transform(a), sax.transform(b))
        assert lower <= euclidean(a, b) + 1e-9

    def test_reconstruct_shape(self, walk_dataset):
        sax = SAX(word_length=8).fit(walk_dataset)
        reconstruction = sax.reconstruct(sax.transform(walk_dataset[0]),
                                         walk_dataset.series_length)
        assert reconstruction.shape == (walk_dataset.series_length,)


@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from([4, 8, 16, 64, 256]),
       st.integers(min_value=2, max_value=16))
@settings(max_examples=40, deadline=None)
def test_sax_mindist_lower_bound_property(seed, alphabet_size, word_length):
    """Property: the iSAX mindist lower-bounds the Euclidean distance."""
    rng = np.random.default_rng(seed)
    length = 64
    matrix = rng.standard_normal((20, length))
    sax = SAX(word_length=word_length, alphabet_size=alphabet_size).fit(matrix)
    query = rng.standard_normal(length)
    summary = sax.transform(query)
    words = sax.words(matrix)
    lower = np.sqrt(sax.mindist_batch(summary, words))
    true = np.array([euclidean(query, row) for row in matrix])
    assert np.all(lower <= true + 1e-9)
