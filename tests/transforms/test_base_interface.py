"""Tests for the shared Summarization / SymbolicSummarization interfaces."""

import numpy as np
import pytest

from repro.core.errors import NotFittedError
from repro.core.series import Dataset
from repro.transforms.base import Summarization, SymbolicSummarization, _as_matrix
from repro.transforms.paa import PAA
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


class TestAsMatrix:
    def test_dataset_passthrough(self, walk_dataset):
        assert _as_matrix(walk_dataset) is walk_dataset.values

    def test_1d_array_becomes_row(self):
        assert _as_matrix(np.arange(8.0)).shape == (1, 8)

    def test_2d_array_passthrough_values(self):
        matrix = np.ones((3, 4))
        assert _as_matrix(matrix).shape == (3, 4)

    def test_list_input(self):
        assert _as_matrix([[1.0, 2.0], [3.0, 4.0]]).shape == (2, 2)


class TestDefaultBatchTransform:
    def test_default_transform_batch_loops_over_rows(self, walk_dataset):
        class MeanOnly(Summarization):
            word_length = 1

            def fit(self, data):
                return self

            def transform(self, series):
                return np.array([np.mean(series)])

            def lower_bound(self, a, b):
                return 0.0

        batch = MeanOnly().fit(walk_dataset).transform_batch(walk_dataset)
        assert batch.shape == (walk_dataset.num_series, 1)
        assert np.allclose(batch[:, 0], walk_dataset.values.mean(axis=1))

    def test_reconstruct_default_raises(self, walk_dataset):
        class MeanOnly(Summarization):
            word_length = 1

            def fit(self, data):
                return self

            def transform(self, series):
                return np.array([np.mean(series)])

            def lower_bound(self, a, b):
                return 0.0

        with pytest.raises(NotImplementedError):
            MeanOnly().reconstruct(np.zeros(1), 10)


class TestSymbolicInterface:
    @pytest.mark.parametrize("factory", [
        lambda: SAX(word_length=8, alphabet_size=16),
        lambda: SFA(word_length=8, alphabet_size=16, sample_fraction=1.0),
    ])
    def test_alphabet_and_bits_consistent(self, factory, oscillatory_dataset):
        summarization = factory().fit(oscillatory_dataset)
        assert summarization.alphabet_size == 16
        assert summarization.bits == 4
        assert 2 ** summarization.bits == summarization.alphabet_size

    @pytest.mark.parametrize("factory", [
        lambda: SAX(word_length=8, alphabet_size=16),
        lambda: SFA(word_length=8, alphabet_size=16, sample_fraction=1.0),
    ])
    def test_properties_require_fit(self, factory):
        summarization = factory()
        with pytest.raises(NotFittedError):
            _ = summarization.alphabet_size
        with pytest.raises(NotFittedError):
            _ = summarization.bits

    def test_lower_bound_to_word_is_sqrt_of_mindist(self, oscillatory_dataset):
        sfa = SFA(word_length=8, sample_fraction=1.0).fit(oscillatory_dataset)
        summary = sfa.transform(oscillatory_dataset[0])
        word = sfa.word(oscillatory_dataset[1])
        assert sfa.lower_bound_to_word(summary, word) == pytest.approx(
            np.sqrt(sfa.mindist(summary, word)))

    def test_words_accept_dataset_and_array(self, oscillatory_dataset):
        sax = SAX(word_length=8, alphabet_size=16).fit(oscillatory_dataset)
        from_dataset = sax.words(oscillatory_dataset)
        from_array = sax.words(oscillatory_dataset.values)
        assert np.array_equal(from_dataset, from_array)

    def test_paa_is_not_symbolic(self):
        assert not isinstance(PAA(), SymbolicSummarization)
        assert isinstance(SAX(), SymbolicSummarization)
        assert isinstance(SFA(), SymbolicSummarization)

    def test_mindist_respects_best_so_far_argument(self, oscillatory_dataset):
        """The best_so_far argument exists for API parity with the SIMD kernel;
        passing it must not change the exactness of the returned bound when the
        bound is below the threshold."""
        sfa = SFA(word_length=8, sample_fraction=1.0).fit(oscillatory_dataset)
        summary = sfa.transform(oscillatory_dataset[0])
        word = sfa.word(oscillatory_dataset[5])
        unbounded = sfa.mindist(summary, word)
        bounded = sfa.mindist(summary, word, best_so_far=unbounded + 1.0)
        assert bounded == pytest.approx(unbounded)


class TestDatasetRoundTrip:
    def test_fit_on_dataset_and_array_give_same_words(self, oscillatory_dataset):
        values = oscillatory_dataset.values
        on_dataset = SFA(word_length=8, sample_fraction=1.0, random_state=1).fit(
            oscillatory_dataset)
        on_array = SFA(word_length=8, sample_fraction=1.0, random_state=1).fit(values)
        assert np.array_equal(on_dataset.words(values), on_array.words(values))

    def test_fit_on_unnormalized_dataset(self, small_matrix):
        dataset = Dataset(small_matrix, normalize=False)
        sfa = SFA(word_length=8, sample_fraction=1.0, skip_dc=False).fit(dataset)
        words = sfa.words(dataset)
        assert words.shape == (dataset.num_series, 8)
