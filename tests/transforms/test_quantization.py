"""Tests for the hierarchical (nested) quantization bins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.transforms.quantization import (
    HierarchicalBins,
    equi_depth_breakpoints,
    equi_width_breakpoints,
    gaussian_breakpoints,
)


class TestBreakpointFunctions:
    def test_gaussian_breakpoints_are_symmetric(self):
        breakpoints = gaussian_breakpoints(8)
        assert breakpoints.shape == (7,)
        assert np.allclose(breakpoints, -breakpoints[::-1])

    def test_gaussian_cardinality_two_is_zero(self):
        assert gaussian_breakpoints(2) == pytest.approx([0.0])

    def test_gaussian_invalid_cardinality(self):
        with pytest.raises(InvalidParameterError):
            gaussian_breakpoints(1)

    def test_equi_depth_splits_mass_evenly(self):
        values = np.arange(1000, dtype=float)
        breakpoints = equi_depth_breakpoints(values, 4)
        counts = np.histogram(values, bins=np.concatenate([[-np.inf], breakpoints, [np.inf]]))[0]
        assert np.allclose(counts, 250, atol=1)

    def test_equi_width_splits_range_evenly(self):
        values = np.array([0.0, 10.0])
        breakpoints = equi_width_breakpoints(values, 4)
        assert np.allclose(breakpoints, [2.5, 5.0, 7.5])

    def test_equi_width_degenerate_range(self):
        breakpoints = equi_width_breakpoints(np.full(10, 3.0), 4)
        assert np.allclose(breakpoints, 3.0)

    def test_breakpoints_are_sorted(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(500)
        for maker in (lambda: equi_depth_breakpoints(values, 16),
                      lambda: equi_width_breakpoints(values, 16),
                      lambda: gaussian_breakpoints(16)):
            breakpoints = maker()
            assert np.all(np.diff(breakpoints) >= 0)


class TestHierarchicalBinsFitting:
    def test_requires_fit_before_use(self):
        bins = HierarchicalBins(bits=4, scheme="equi-width")
        with pytest.raises(NotFittedError):
            bins.symbols(np.zeros(3))

    def test_invalid_scheme_raises(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalBins(bits=4, scheme="quantile")

    def test_invalid_bits_raises(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalBins(bits=0)
        with pytest.raises(InvalidParameterError):
            HierarchicalBins(bits=20)

    def test_fit_dimensions_only_for_gaussian(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalBins(bits=4, scheme="equi-width").fit_dimensions(3)
        bins = HierarchicalBins(bits=4, scheme="gaussian").fit_dimensions(3)
        assert bins.num_dimensions == 3

    def test_fit_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalBins(bits=2, scheme="equi-width").fit(np.zeros(5))

    @pytest.mark.parametrize("scheme", ["gaussian", "equi-depth", "equi-width"])
    def test_cardinality_and_dimensions(self, scheme, rng):
        bins = HierarchicalBins(bits=5, scheme=scheme)
        bins.fit(rng.standard_normal((200, 4)))
        assert bins.cardinality == 32
        assert bins.num_dimensions == 4


class TestSymbols:
    @pytest.mark.parametrize("scheme", ["gaussian", "equi-depth", "equi-width"])
    def test_symbols_in_range(self, scheme, rng):
        data = rng.standard_normal((300, 6))
        bins = HierarchicalBins(bits=4, scheme=scheme).fit(data)
        symbols = bins.symbols(data)
        assert symbols.min() >= 0
        assert symbols.max() < 16

    def test_single_series_shape(self, rng):
        data = rng.standard_normal((100, 3))
        bins = HierarchicalBins(bits=3, scheme="equi-width").fit(data)
        assert bins.symbols(data[0]).shape == (3,)

    def test_monotonic_in_value(self, rng):
        data = rng.standard_normal((500, 1))
        bins = HierarchicalBins(bits=6, scheme="equi-depth").fit(data)
        values = np.linspace(-3, 3, 50).reshape(-1, 1)
        symbols = bins.symbols(values)[:, 0]
        assert np.all(np.diff(symbols) >= 0)

    def test_dimension_mismatch_raises(self, rng):
        bins = HierarchicalBins(bits=3, scheme="equi-width").fit(rng.standard_normal((50, 3)))
        with pytest.raises(InvalidParameterError):
            bins.symbols(np.zeros((2, 5)))

    def test_promote_drops_low_bits(self):
        symbols = np.array([0b1011, 0b0100])
        assert np.array_equal(HierarchicalBins.promote(symbols, 4, 2), [0b10, 0b01])

    def test_promote_cannot_add_bits(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalBins.promote(np.array([1]), 2, 4)


class TestNesting:
    """The property the tree index relies on: coarser bins contain finer bins."""

    @pytest.mark.parametrize("scheme", ["gaussian", "equi-depth", "equi-width"])
    def test_promoted_symbols_match_coarse_quantization(self, scheme, rng):
        data = rng.standard_normal((400, 4)) * 2.0 + 0.3
        fine = HierarchicalBins(bits=8, scheme=scheme).fit(data)
        test_points = rng.standard_normal((200, 4))
        fine_symbols = fine.symbols(test_points)
        for coarse_bits in (1, 2, 4):
            coarse = HierarchicalBins(bits=coarse_bits, scheme=scheme).fit(data)
            coarse_symbols = coarse.symbols(test_points)
            promoted = HierarchicalBins.promote(fine_symbols, 8, coarse_bits)
            assert np.array_equal(promoted, coarse_symbols)

    @pytest.mark.parametrize("scheme", ["gaussian", "equi-depth", "equi-width"])
    def test_coarse_intervals_contain_fine_intervals(self, scheme, rng):
        data = rng.standard_normal((300, 2))
        bins = HierarchicalBins(bits=6, scheme=scheme).fit(data)
        points = rng.standard_normal((100, 2))
        symbols = bins.symbols(points)
        fine_lower, fine_upper = bins.intervals(symbols)
        for coarse_bits in (1, 3, 5):
            promoted = HierarchicalBins.promote(symbols, 6, coarse_bits)
            lower, upper = bins.intervals(promoted, coarse_bits)
            assert np.all(lower <= fine_lower + 1e-12)
            assert np.all(upper >= fine_upper - 1e-12)

    def test_breakpoints_at_are_strided_subsets(self, rng):
        data = rng.standard_normal((500, 1))
        bins = HierarchicalBins(bits=4, scheme="equi-depth").fit(data)
        full = bins.breakpoints_at(4)[0]
        half = bins.breakpoints_at(3)[0]
        assert np.allclose(half, full[1::2])
        assert bins.breakpoints_at(0).shape == (1, 0)


class TestIntervals:
    def test_value_falls_inside_its_interval(self, rng):
        data = rng.standard_normal((300, 5))
        bins = HierarchicalBins(bits=5, scheme="equi-width").fit(data)
        points = rng.standard_normal((100, 5))
        symbols = bins.symbols(points)
        lower, upper = bins.intervals(symbols)
        assert np.all(points >= lower)
        assert np.all(points <= upper)

    def test_outer_bins_are_unbounded(self, rng):
        data = rng.standard_normal((100, 1))
        bins = HierarchicalBins(bits=2, scheme="gaussian").fit(data)
        lower, upper = bins.intervals(np.array([[0], [3]]))
        assert lower[0, 0] == -np.inf
        assert upper[1, 0] == np.inf

    def test_zero_bits_means_unbounded(self, rng):
        data = rng.standard_normal((100, 2))
        bins = HierarchicalBins(bits=3, scheme="equi-depth").fit(data)
        lower, upper = bins.intervals(np.zeros((1, 2), dtype=int), cardinality_bits=0)
        assert np.all(np.isneginf(lower))
        assert np.all(np.isposinf(upper))

    def test_out_of_range_symbol_raises(self, rng):
        data = rng.standard_normal((100, 1))
        bins = HierarchicalBins(bits=2, scheme="gaussian").fit(data)
        with pytest.raises(InvalidParameterError):
            bins.intervals(np.array([[4]]))

    def test_mindist_zero_inside_interval(self, rng):
        data = rng.standard_normal((200, 3))
        bins = HierarchicalBins(bits=4, scheme="equi-width").fit(data)
        points = rng.standard_normal((50, 3))
        symbols = bins.symbols(points)
        assert np.allclose(bins.mindist(points, symbols), 0.0)

    def test_mindist_positive_outside_interval(self, rng):
        data = rng.standard_normal((200, 1))
        bins = HierarchicalBins(bits=3, scheme="equi-depth").fit(data)
        symbols = bins.symbols(np.array([[5.0]]))  # far right bin
        distance = bins.mindist(np.array([[-5.0]]), symbols)
        assert distance[0, 0] > 0


class TestIntervalsBatch:
    """intervals_batch: per-word bit counts, one vectorized gather."""

    @pytest.mark.parametrize("scheme", ["gaussian", "equi-depth", "equi-width"])
    def test_matches_per_word_intervals(self, scheme, rng):
        data = rng.standard_normal((300, 4))
        bins = HierarchicalBins(bits=4, scheme=scheme).fit(data)
        num_words = 40
        bits_matrix = rng.integers(0, 5, size=(num_words, 4))
        symbols = rng.integers(0, 1 << 4, size=(num_words, 4)) % (1 << bits_matrix)
        lower, upper = bins.intervals_batch(symbols, bits_matrix)
        for row in range(num_words):
            expected_lower, expected_upper = bins.intervals(symbols[row],
                                                            bits_matrix[row])
            assert np.array_equal(lower[row], expected_lower)
            assert np.array_equal(upper[row], expected_upper)

    def test_broadcasts_shared_bits(self, rng):
        data = rng.standard_normal((200, 3))
        bins = HierarchicalBins(bits=3, scheme="equi-width").fit(data)
        symbols = rng.integers(0, 4, size=(20, 3))
        lower, upper = bins.intervals_batch(symbols, np.int64(2))
        expected_lower, expected_upper = bins.intervals(symbols, 2)
        assert np.array_equal(lower, expected_lower)
        assert np.array_equal(upper, expected_upper)

    def test_zero_bits_rows_are_unbounded(self, rng):
        data = rng.standard_normal((100, 2))
        bins = HierarchicalBins(bits=3, scheme="equi-depth").fit(data)
        symbols = np.array([[0, 3], [0, 0]])
        bits_matrix = np.array([[0, 2], [0, 0]])
        lower, upper = bins.intervals_batch(symbols, bits_matrix)
        assert np.isneginf(lower[0, 0]) and np.isposinf(upper[0, 0])
        assert np.all(np.isneginf(lower[1])) and np.all(np.isposinf(upper[1]))
        assert np.isfinite(lower[0, 1])

    def test_invalid_inputs_raise(self, rng):
        data = rng.standard_normal((100, 2))
        bins = HierarchicalBins(bits=2, scheme="gaussian").fit(data)
        with pytest.raises(InvalidParameterError):
            bins.intervals_batch(np.zeros(2, dtype=int), np.int64(1))  # 1-D
        with pytest.raises(InvalidParameterError):
            bins.intervals_batch(np.zeros((3, 5), dtype=int), np.int64(1))  # dims
        with pytest.raises(InvalidParameterError):
            bins.intervals_batch(np.zeros((2, 2), dtype=int),
                                 np.array([[3, 0], [0, 0]]))  # bits too large
        with pytest.raises(InvalidParameterError):
            bins.intervals_batch(np.array([[2, 0]]), np.array([[1, 1]]))  # symbol
        with pytest.raises(NotFittedError):
            HierarchicalBins(bits=2).intervals_batch(np.zeros((1, 2), dtype=int),
                                                     np.int64(1))


@given(st.integers(min_value=0, max_value=5000),
       st.sampled_from(["gaussian", "equi-depth", "equi-width"]),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_mindist_lower_bounds_true_gap_property(seed, scheme, bits):
    """mindist(value, symbol(other)) never exceeds |value − other| per dimension."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((200, 3))
    bins = HierarchicalBins(bits=bits, scheme=scheme).fit(data)
    value = rng.standard_normal(3)
    other = rng.standard_normal(3)
    symbols = bins.symbols(other)
    gaps = bins.mindist(value, symbols)
    assert np.all(gaps <= np.abs(value - other) + 1e-9)
