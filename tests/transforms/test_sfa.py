"""Tests for the Symbolic Fourier Approximation (SFA) and MCB."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.core.errors import InvalidParameterError, NotFittedError
from repro.transforms.sfa import SFA


class TestConstruction:
    def test_invalid_binning_raises(self):
        with pytest.raises(InvalidParameterError):
            SFA(binning="kmeans")

    def test_invalid_alphabet_raises(self):
        with pytest.raises(InvalidParameterError):
            SFA(alphabet_size=3)

    def test_invalid_sample_fraction_raises(self):
        with pytest.raises(InvalidParameterError):
            SFA(sample_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            SFA(sample_fraction=1.5)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            SFA().word(np.zeros(64))


class TestFitting:
    def test_selects_requested_number_of_components(self, oscillatory_dataset):
        sfa = SFA(word_length=12, sample_fraction=1.0).fit(oscillatory_dataset)
        assert sfa.selected_components.shape == (12,)
        assert sfa.weights.shape == (12,)

    def test_skip_dc_excludes_dc_components(self, oscillatory_dataset):
        sfa = SFA(word_length=8, sample_fraction=1.0, skip_dc=True).fit(oscillatory_dataset)
        assert sfa.selected_components.min() >= 2

    def test_candidate_window_limits_selection(self, oscillatory_dataset):
        sfa = SFA(word_length=8, num_candidate_coefficients=4,
                  sample_fraction=1.0).fit(oscillatory_dataset)
        # With DC skipped, candidates are components 2 .. 2*4+1.
        assert sfa.selected_components.max() <= 2 * 4 + 1

    def test_word_length_exceeding_candidates_raises(self, oscillatory_dataset):
        with pytest.raises(InvalidParameterError):
            SFA(word_length=16, num_candidate_coefficients=2,
                sample_fraction=1.0).fit(oscillatory_dataset)

    def test_variance_selection_prefers_high_variance_components(self, oscillatory_dataset):
        """On high-frequency data, variance selection picks higher coefficients
        than the low-pass (first-k) selection."""
        variance = SFA(word_length=8, variance_selection=True,
                       sample_fraction=1.0).fit(oscillatory_dataset)
        lowpass = SFA(word_length=8, variance_selection=False,
                      sample_fraction=1.0).fit(oscillatory_dataset)
        assert variance.mean_selected_coefficient_index() \
            > lowpass.mean_selected_coefficient_index()

    def test_selection_is_deterministic_given_seed(self, oscillatory_dataset):
        first = SFA(word_length=8, sample_fraction=0.5, random_state=3).fit(oscillatory_dataset)
        second = SFA(word_length=8, sample_fraction=0.5, random_state=3).fit(oscillatory_dataset)
        assert np.array_equal(first.selected_components, second.selected_components)

    def test_sampling_fraction_changes_only_the_sample(self, oscillatory_dataset):
        """Small sampling fractions must still produce a usable summarization."""
        sfa = SFA(word_length=8, sample_fraction=0.05).fit(oscillatory_dataset)
        words = sfa.words(oscillatory_dataset)
        assert words.shape == (oscillatory_dataset.num_series, 8)

    def test_weights_are_parseval_factors(self, oscillatory_dataset):
        sfa = SFA(word_length=8, sample_fraction=1.0).fit(oscillatory_dataset)
        assert set(np.unique(sfa.weights)) <= {1.0, 2.0}


class TestWordsAndSummaries:
    def test_words_in_alphabet(self, oscillatory_dataset):
        sfa = SFA(word_length=8, alphabet_size=32, sample_fraction=1.0).fit(oscillatory_dataset)
        words = sfa.words(oscillatory_dataset)
        assert words.min() >= 0
        assert words.max() < 32

    def test_transform_batch_matches_single(self, oscillatory_dataset):
        sfa = SFA(word_length=10, sample_fraction=1.0).fit(oscillatory_dataset)
        batch = sfa.transform_batch(oscillatory_dataset)
        singles = np.vstack([sfa.transform(row) for row in oscillatory_dataset.values])
        assert np.allclose(batch, singles)

    def test_word_to_string(self, oscillatory_dataset):
        sfa = SFA(word_length=4, alphabet_size=8, sample_fraction=1.0).fit(oscillatory_dataset)
        assert sfa.word_to_string(np.array([0, 1, 2, 3])) == "abcd"

    def test_reconstruction_resembles_original_better_than_mean(self, oscillatory_dataset):
        """SFA's Fourier reconstruction beats a flat-line (mean) approximation
        on high-frequency data — the Figure 1 argument."""
        sfa = SFA(word_length=16, sample_fraction=1.0).fit(oscillatory_dataset)
        series = oscillatory_dataset[0]
        reconstruction = sfa.reconstruct(sfa.transform(series), series.shape[0])
        flat_error = np.linalg.norm(series - series.mean())
        sfa_error = np.linalg.norm(series - reconstruction)
        assert sfa_error < flat_error


class TestLowerBounds:
    @pytest.mark.parametrize("binning", ["equi-width", "equi-depth"])
    @pytest.mark.parametrize("variance_selection", [True, False])
    def test_mindist_is_lower_bound(self, oscillatory_dataset, binning, variance_selection):
        """Core GEMINI requirement for every SFA variant used in the ablation."""
        sfa = SFA(word_length=16, alphabet_size=64, binning=binning,
                  variance_selection=variance_selection,
                  sample_fraction=1.0).fit(oscillatory_dataset)
        values = oscillatory_dataset.values
        words = sfa.words(oscillatory_dataset)
        for i in range(0, 20, 4):
            query = values[i]
            summary = sfa.transform(query)
            lower = np.sqrt(sfa.mindist_batch(summary, words[60:]))
            true = np.array([euclidean(query, row) for row in values[60:]])
            assert np.all(lower <= true + 1e-9)

    def test_mindist_zero_for_own_word(self, oscillatory_dataset):
        sfa = SFA(word_length=8, sample_fraction=1.0).fit(oscillatory_dataset)
        series = oscillatory_dataset[0]
        assert sfa.mindist(sfa.transform(series), sfa.word(series)) == pytest.approx(0.0)

    def test_numeric_lower_bound_is_dft_bound(self, oscillatory_dataset):
        sfa = SFA(word_length=16, sample_fraction=1.0).fit(oscillatory_dataset)
        a, b = oscillatory_dataset[0], oscillatory_dataset[1]
        lower = sfa.lower_bound(sfa.transform(a), sfa.transform(b))
        assert lower <= euclidean(a, b) + 1e-9

    def test_symbolic_bound_never_exceeds_numeric_bound(self, oscillatory_dataset):
        """Quantization can only lose information: mindist <= DFT lower bound."""
        sfa = SFA(word_length=16, alphabet_size=16, sample_fraction=1.0).fit(oscillatory_dataset)
        values = oscillatory_dataset.values
        for i in range(0, 10, 2):
            summary_a = sfa.transform(values[i])
            summary_b = sfa.transform(values[i + 1])
            word_b = sfa.word(values[i + 1])
            symbolic = np.sqrt(sfa.mindist(summary_a, word_b))
            numeric = sfa.lower_bound(summary_a, summary_b)
            assert symbolic <= numeric + 1e-9

    def test_equi_width_tlb_beats_isax_on_high_frequency_data(self, oscillatory_dataset):
        """The paper's headline ablation claim, at small scale."""
        from repro.transforms.sax import SAX

        values = oscillatory_dataset.values
        queries = values[:10]
        candidates = values[50:]

        def mean_tlb(summarization):
            summarization.fit(oscillatory_dataset)
            words = summarization.bins.symbols(
                summarization.transform_batch(candidates))
            ratios = []
            for query in queries:
                summary = summarization.transform(query)
                lower = np.sqrt(summarization.mindist_batch(summary, words))
                true = np.array([euclidean(query, row) for row in candidates])
                ratios.append(np.mean(lower / true))
            return float(np.mean(ratios))

        sfa_tlb = mean_tlb(SFA(word_length=16, alphabet_size=64, sample_fraction=1.0))
        sax_tlb = mean_tlb(SAX(word_length=16, alphabet_size=64))
        assert sfa_tlb > sax_tlb


@given(st.integers(min_value=0, max_value=10_000),
       st.sampled_from(["equi-width", "equi-depth"]),
       st.sampled_from([4, 16, 256]),
       st.booleans())
@settings(max_examples=25, deadline=None)
def test_sfa_mindist_lower_bound_property(seed, binning, alphabet_size, variance_selection):
    """Property: the SFA mindist lower-bounds the Euclidean distance."""
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((30, 48))
    sfa = SFA(word_length=8, alphabet_size=alphabet_size, binning=binning,
              variance_selection=variance_selection, sample_fraction=1.0,
              num_candidate_coefficients=None).fit(matrix)
    query = rng.standard_normal(48)
    summary = sfa.transform(query)
    words = sfa.words(matrix)
    lower = np.sqrt(sfa.mindist_batch(summary, words))
    true = np.array([euclidean(query, row) for row in matrix])
    assert np.all(lower <= true + 1e-9)
