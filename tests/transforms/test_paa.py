"""Tests for Piecewise Aggregate Approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.core.errors import InvalidParameterError
from repro.transforms.paa import PAA, paa_transform, paa_transform_batch


class TestPaaTransform:
    def test_even_segments_are_segment_means(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.allclose(paa_transform(series, 2), [2.0, 6.0])

    def test_full_length_is_identity(self):
        series = np.arange(8, dtype=float)
        assert np.allclose(paa_transform(series, 8), series)

    def test_single_segment_is_global_mean(self):
        series = np.arange(10, dtype=float)
        assert paa_transform(series, 1) == pytest.approx([4.5])

    def test_uneven_segments_cover_all_points(self):
        series = np.arange(10, dtype=float)
        summary = paa_transform(series, 3)
        assert summary.shape == (3,)
        # Means of segments [0:4), [4:7), [7:10) with numpy linspace boundaries.
        boundaries = np.linspace(0, 10, 4).astype(int)
        expected = [series[boundaries[i]:boundaries[i + 1]].mean() for i in range(3)]
        assert np.allclose(summary, expected)

    def test_invalid_segments_raise(self):
        with pytest.raises(InvalidParameterError):
            paa_transform(np.zeros(4), 0)
        with pytest.raises(InvalidParameterError):
            paa_transform(np.zeros(4), 5)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((12, 31))
        batch = paa_transform_batch(matrix, 7)
        singles = np.vstack([paa_transform(row, 7) for row in matrix])
        assert np.allclose(batch, singles)

    def test_batch_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            paa_transform_batch(np.zeros(10), 2)


class TestPaaSummarization:
    def test_fit_records_series_length(self, walk_dataset):
        paa = PAA(word_length=8).fit(walk_dataset)
        assert paa.series_length == walk_dataset.series_length

    def test_word_length_exceeding_series_length_raises(self):
        with pytest.raises(InvalidParameterError):
            PAA(word_length=100).fit(np.zeros((5, 10)))

    def test_lower_bound_property(self, walk_dataset):
        """The PAA lower bound never exceeds the true Euclidean distance."""
        paa = PAA(word_length=8).fit(walk_dataset)
        values = walk_dataset.values
        for i in range(0, 20, 2):
            a, b = values[i], values[i + 1]
            lower = paa.lower_bound(paa.transform(a), paa.transform(b))
            assert lower <= euclidean(a, b) + 1e-9

    def test_lower_bound_of_identical_series_is_zero(self, walk_dataset):
        paa = PAA(word_length=8).fit(walk_dataset)
        summary = paa.transform(walk_dataset[0])
        assert paa.lower_bound(summary, summary) == pytest.approx(0.0)

    def test_reconstruct_is_piecewise_constant(self, walk_dataset):
        paa = PAA(word_length=4).fit(walk_dataset)
        summary = paa.transform(walk_dataset[0])
        reconstruction = paa.reconstruct(summary, walk_dataset.series_length)
        assert reconstruction.shape == (walk_dataset.series_length,)
        assert len(np.unique(reconstruction)) <= 4

    def test_transform_batch_shape(self, walk_dataset):
        paa = PAA(word_length=16).fit(walk_dataset)
        assert paa.transform_batch(walk_dataset).shape == (walk_dataset.num_series, 16)

    def test_invalid_word_length(self):
        with pytest.raises(InvalidParameterError):
            PAA(word_length=0)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=16, max_value=128))
@settings(max_examples=40, deadline=None)
def test_paa_lower_bound_property(seed, word_length, length):
    """Property: d_PAA <= d_ED for random series pairs and any segmentation."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(length)
    b = rng.standard_normal(length)
    paa = PAA(word_length=word_length).fit(a.reshape(1, -1))
    lower = paa.lower_bound(paa.transform(a), paa.transform(b))
    assert lower <= euclidean(a, b) + 1e-9
