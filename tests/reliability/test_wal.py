"""Write-ahead log: format, torn tails, crash sweeps and replay bit-identity.

The durability contract under test (see :mod:`repro.index.wal`):

* every acked ``insert``/``insert_batch``/``delete`` is in the log *before*
  the in-memory state mutates, so ``DynamicIndex.recover`` (snapshot + replay)
  reproduces the crashed index **bit-identically** up to the last acked write;
* a crash mid-append leaves a torn tail that the next open truncates — the
  recovered state is always the state after some *prefix* of the operations,
  never a torn mix;
* a flipped bit in a sealed record is detected as a typed
  :class:`~repro.core.errors.CorruptionError` naming the file and offset.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fsio
from repro.core.errors import (
    CorruptionError,
    InvalidParameterError,
    WalError,
)
from repro.datasets.synthetic import random_walk
from repro.index.dynamic import DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    WriteAheadLog,
    read_records,
)

from fault_harness import FaultInjector, SimulatedCrash

SERIES_LENGTH = 32


def _rows(count: int, seed: int) -> np.ndarray:
    return random_walk(count, SERIES_LENGTH, seed=seed)


def _build_dynamic(base: np.ndarray, wal_dir=None,
                   wal_fsync: str = "always") -> DynamicIndex:
    index = MessiIndex(word_length=8, alphabet_size=16, leaf_size=8).build(base)
    options = {}
    if wal_dir is not None:
        options = {"wal_dir": wal_dir, "wal_fsync": wal_fsync}
    return index.dynamic(**options)


def _signature(dynamic: DynamicIndex, queries: np.ndarray):
    results = dynamic.knn_batch(queries, k=2, num_workers=1)
    return (dynamic.num_base, dynamic.delta_count, dynamic.num_surviving,
            [(result.indices.tolist(), result.distances.tolist())
             for result in results])


# --------------------------------------------------------------- log format


class TestLogFormat:
    def test_roundtrip_and_lsn_order(self, tmp_path):
        matrix = _rows(3, seed=1)
        with WriteAheadLog(tmp_path / "wal") as wal:
            first = wal.append_insert(matrix)
            second = wal.append_delete(7)
            third = wal.append_compact()
        assert (first, second, third) == (1, 2, 3)
        records = read_records(tmp_path / "wal")
        assert [record.op for record in records] == [OP_INSERT, OP_DELETE,
                                                     OP_COMPACT]
        assert [record.lsn for record in records] == [1, 2, 3]
        np.testing.assert_array_equal(records[0].values, matrix)
        assert records[0].values.dtype == np.float64
        assert records[1].row == 7
        # after_lsn filters the already-applied prefix.
        assert [record.lsn for record in read_records(tmp_path / "wal",
                                                      after_lsn=2)] == [3]

    def test_reopen_continues_lsn_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_delete(1)
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.last_lsn == 1
            assert wal.append_delete(2) == 2

    def test_rotation_spans_segments(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_delete(1)
            wal.rotate()
            wal.append_delete(2)
            assert len(list((tmp_path / "wal").glob("wal-*.log"))) == 2
        assert [record.lsn for record in read_records(tmp_path / "wal")] == [1, 2]

    def test_checkpoint_drops_old_segments(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_delete(1)
            wal.checkpoint()
            assert wal.append_delete(2) == 2  # LSNs keep counting
        segments = list((tmp_path / "wal").glob("wal-*.log"))
        assert len(segments) == 1
        assert [record.lsn for record in read_records(tmp_path / "wal")] == [2]

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="fsync"):
            WriteAheadLog(tmp_path / "wal", fsync="sometimes")
        with pytest.raises(InvalidParameterError, match="batch_bytes"):
            WriteAheadLog(tmp_path / "wal2", fsync="batch", batch_bytes=0)
        with WriteAheadLog(tmp_path / "wal3") as wal:
            with pytest.raises(WalError, match="2-D"):
                wal.append_insert(np.zeros(4))
        with pytest.raises(WalError, match="closed"):
            wal.append_delete(0)
        with pytest.raises(WalError, match="not a write-ahead-log"):
            read_records(tmp_path / "nonexistent")

    def test_expect_empty_refuses_unreplayed_records(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_delete(3)
        with pytest.raises(WalError, match="recover"):
            WriteAheadLog(tmp_path / "wal", expect_empty=True)


class TestTornTailsAndCorruption:
    def _filled_log(self, tmp_path):
        directory = tmp_path / "wal"
        with WriteAheadLog(directory) as wal:
            wal.append_insert(_rows(2, seed=2))
            wal.append_delete(5)
            wal.append_insert(_rows(1, seed=3))
        (segment,) = directory.glob("wal-*.log")
        return directory, segment

    def test_torn_tail_truncation_sweep(self, tmp_path):
        """Cutting the segment at *every* byte length keeps a clean prefix."""
        directory, segment = self._filled_log(tmp_path)
        original = segment.read_bytes()
        full_records = [record.lsn for record in read_records(directory)]
        for cut in range(len(original) - 1, 15, -8):  # stride keeps it fast
            segment.write_bytes(original[:cut])
            survivors = [record.lsn for record in read_records(directory)]
            assert survivors == full_records[:len(survivors)], (
                f"cut at {cut} bytes returned a non-prefix of the log")
            # Re-opening for append truncates the torn tail and the log
            # accepts new records without complaint.
            with WriteAheadLog(directory) as wal:
                wal.append_delete(99)
            appended = [record.lsn for record in read_records(directory)]
            assert appended[-1] == (survivors[-1] if survivors else 0) + 1
            segment.write_bytes(original)  # restore for the next cut

    def test_bit_flip_in_sealed_record_is_detected(self, tmp_path):
        directory, segment = self._filled_log(tmp_path)
        original = bytearray(segment.read_bytes())
        # Flip a payload byte of the *first* record (not the tail): a
        # complete record failing its CRC is corruption, not a torn tail.
        position = 16 + 17 + 4  # file header + record header + into payload
        original[position] ^= 0x01
        segment.write_bytes(bytes(original))
        with pytest.raises(CorruptionError, match=segment.name):
            read_records(directory)

    def test_damage_in_non_last_segment_is_corruption(self, tmp_path):
        directory = tmp_path / "wal"
        with WriteAheadLog(directory) as wal:
            wal.append_delete(1)
            wal.rotate()
            wal.append_delete(2)
        first, _second = sorted(directory.glob("wal-*.log"))
        first.write_bytes(first.read_bytes()[:-4])  # tear the sealed segment
        with pytest.raises(CorruptionError, match=first.name):
            read_records(directory)

    def test_out_of_order_lsns_are_corruption(self, tmp_path):
        directory = tmp_path / "wal"
        with WriteAheadLog(directory) as wal:
            wal.append_delete(1)
            wal.append_delete(2)
        (segment,) = directory.glob("wal-*.log")
        data = bytearray(segment.read_bytes())
        # Both delete records are identical in size; swapping them breaks
        # the strictly-increasing LSN rule without breaking any CRC.
        record_size = 17 + 8
        first = bytes(data[16:16 + record_size])
        second = bytes(data[16 + record_size:16 + 2 * record_size])
        segment.write_bytes(bytes(data[:16]) + second + first)
        with pytest.raises(CorruptionError, match="out of order"):
            read_records(directory)

    def test_crash_while_creating_segment_recovers_header(self, tmp_path):
        directory = tmp_path / "wal"
        with WriteAheadLog(directory) as wal:
            wal.append_delete(1)
        (segment,) = directory.glob("wal-*.log")
        # Simulate a crash right after rotation created a short file.
        partial = directory / "wal-000002.log"
        partial.write_bytes(b"REPRO")  # shorter than the file header
        with WriteAheadLog(directory) as wal:
            assert wal.last_lsn == 1
            wal.append_delete(2)
        assert [record.lsn for record in read_records(directory)] == [1, 2]


# --------------------------------------------------- write-ahead crash sweeps


def _scripted_ops(extra_a: np.ndarray, extra_b: np.ndarray):
    """The operation script used by the deterministic crash sweeps."""
    return [
        ("insert", lambda dyn: dyn.insert_batch(extra_a)),
        ("delete", lambda dyn: dyn.delete(2)),
        ("compact", lambda dyn: dyn.compact()),
        ("insert", lambda dyn: dyn.insert_batch(extra_b)),
        ("delete", lambda dyn: dyn.delete(0)),
    ]


class TestWriteAheadCrashSweep:
    def test_recovery_is_a_prefix_at_every_crash_point(self, tmp_path):
        """Crash anywhere inside any operation; recover to an op boundary.

        Because every record is appended atomically-or-torn and the torn
        tail is truncated, the recovered index must equal the state after
        some prefix of the acked operations — and at least the operations
        acked *before* the crashed one must all be present.
        """
        base = _rows(24, seed=10)
        extra_a, extra_b = _rows(4, seed=11), _rows(3, seed=12)
        queries = _rows(2, seed=13)
        ops = _scripted_ops(extra_a, extra_b)

        # Reference run records the signature at every operation boundary.
        reference = _build_dynamic(base)
        prefix_signatures = [_signature(reference, queries)]
        for _name, operation in ops:
            operation(reference)
            prefix_signatures.append(_signature(reference, queries))

        injector = FaultInjector()
        for crashed_op in range(len(ops)):
            # Enumerate the durable effects of the operation to crash.
            probe_dir = tmp_path / f"probe-{crashed_op}"
            dynamic = _build_dynamic(base, wal_dir=probe_dir / "wal")
            dynamic.save(probe_dir / "snap")
            for _name, operation in ops[:crashed_op]:
                operation(dynamic)
            num_ops = injector.count_ops(
                lambda: ops[crashed_op][1](dynamic))
            dynamic.close()
            assert num_ops >= 1

            for point in range(num_ops):
                work = tmp_path / f"crash-{crashed_op}-{point}"
                dynamic = _build_dynamic(base, wal_dir=work / "wal")
                dynamic.save(work / "snap")
                for _name, operation in ops[:crashed_op]:
                    operation(dynamic)
                with pytest.raises(SimulatedCrash):
                    injector.crash_at(point,
                                      lambda: ops[crashed_op][1](dynamic))
                # The "process" is dead; recover from disk alone.
                recovered = DynamicIndex.recover(work / "snap", work / "wal")
                observed = _signature(recovered, queries)
                assert observed in prefix_signatures, (
                    f"op {crashed_op} crash point {point}: recovered state "
                    "is not an operation-boundary state")
                # Prefix property: everything acked before the crashed
                # operation survived.
                position = prefix_signatures.index(observed)
                assert position >= crashed_op, (
                    f"op {crashed_op} crash point {point}: an acked "
                    "operation was lost")
                recovered.close()

    def test_crash_before_the_log_append_leaves_memory_unmutated(self,
                                                                 tmp_path):
        """Write-ahead ordering: if the log write failed, nothing happened."""
        base = _rows(16, seed=20)
        queries = _rows(2, seed=21)
        dynamic = _build_dynamic(base, wal_dir=tmp_path / "wal")
        before = _signature(dynamic, queries)
        injector = FaultInjector()
        with pytest.raises(SimulatedCrash):
            injector.crash_at(0, lambda: dynamic.insert_batch(_rows(2, seed=22)))
        with pytest.raises(SimulatedCrash):
            injector.crash_at(0, lambda: dynamic.delete(3))
        assert _signature(dynamic, queries) == before
        # The survivor is fully usable: the failed calls left no half-state.
        dynamic.insert_batch(_rows(2, seed=22))
        dynamic.delete(3)
        dynamic.close()

    def test_snapshot_checkpoint_crash_sweep(self, tmp_path):
        """Crash anywhere inside save(): recovery always equals the live state.

        ``save`` commits the snapshot, then checkpoints the log.  Whichever
        effect the crash lands on, snapshot + replay must reconstruct the
        exact state being saved — the old snapshot still has the full log,
        the new snapshot skips covered records via ``wal.applied_lsn``.
        """
        base = _rows(20, seed=30)
        queries = _rows(2, seed=31)

        def prepare(work):
            dynamic = _build_dynamic(base, wal_dir=work / "wal")
            dynamic.save(work / "snap")
            dynamic.insert_batch(_rows(3, seed=32))
            dynamic.delete(1)
            return dynamic

        injector = FaultInjector()
        probe = prepare(tmp_path / "probe")
        expected = _signature(probe, queries)
        num_ops = injector.count_ops(lambda: probe.save(tmp_path / "probe" / "snap"))
        probe.close()
        assert num_ops > 5

        for point in range(num_ops):
            work = tmp_path / f"crash-{point}"
            dynamic = prepare(work)
            with pytest.raises(SimulatedCrash):
                injector.crash_at(point, lambda: dynamic.save(work / "snap"))
            recovered = DynamicIndex.recover(work / "snap", work / "wal")
            assert _signature(recovered, queries) == expected, (
                f"crash point {point} during save() lost acked writes")
            recovered.close()


# ------------------------------------------------- fsync policy: power loss


class _DurabilityWatermark:
    """fsio hook tracking, per file, the byte length covered by the last fsync.

    ``append_bytes`` flushes to the page cache (survives a *process* crash);
    only an fsync makes bytes survive a *power* failure.  At the moment the
    ``fsync`` effect fires, everything previously appended is in the file, so
    its current size is exactly the durable watermark — the prefix a power
    cut at any later instant is guaranteed to preserve.
    """

    def __init__(self) -> None:
        self.durable: "dict[str, int]" = {}

    def __call__(self, operation: str, path: str) -> None:
        if operation == "fsync":
            try:
                self.durable[path] = os.path.getsize(path)
            except OSError:
                self.durable[path] = 0


class TestBatchFsyncPowerLoss:
    """Pin the ``fsync="batch"`` durability trade: a record covered by the
    last fsync must survive a power cut; the un-fsynced acked tail *may* be
    lost — but only ever as a clean suffix, never a torn mix."""

    RECORD_COUNT = 10

    def _run_appends(self, directory, fsync: str, batch_bytes: int):
        """Append a fixed insert/delete script, recording after every ack
        ``(lsn, durable_bytes, file_bytes)`` — the durable fsync watermark
        and the segment length at that instant."""
        watermark = _DurabilityWatermark()
        previous = fsio.set_hook(watermark)
        try:
            checkpoints = []
            with WriteAheadLog(directory, fsync=fsync,
                               batch_bytes=batch_bytes) as wal:
                (segment,) = directory.glob("wal-*.log")
                for position in range(self.RECORD_COUNT):
                    if position % 3 == 2:
                        wal.append_delete(position)
                    else:
                        wal.append_insert(_rows(2, seed=70 + position))
                    checkpoints.append((wal.last_lsn,
                                        watermark.durable.get(str(segment), 0),
                                        segment.stat().st_size))
        finally:
            fsio.set_hook(previous)
        return segment, checkpoints

    @staticmethod
    def _survived_lsn(checkpoints, durable_bytes: int) -> int:
        """Highest LSN whose record lies entirely inside the durable prefix."""
        return max((lsn for lsn, _durable, file_bytes in checkpoints
                    if file_bytes <= durable_bytes), default=0)

    def test_power_cut_sweep_loses_only_the_unsynced_tail(self, tmp_path):
        directory = tmp_path / "wal"
        # batch_bytes below one insert record: inserts cross the threshold
        # and fsync, the small delete records ride unsynced — both sides of
        # the policy are exercised in one script.
        segment, checkpoints = self._run_appends(directory, "batch",
                                                 batch_bytes=400)
        original = segment.read_bytes()
        assert len({durable for _, durable, _ in checkpoints}) > 2, \
            "the script never crossed an fsync threshold"

        saw_tail_loss = saw_full_coverage = False
        for acked_lsn, durable_bytes, _file_bytes in checkpoints:
            # The power cut at this checkpoint: everything past the last
            # fsync is gone; the log never sees a close() (close would sync).
            segment.write_bytes(original[:durable_bytes])
            survivors = [record.lsn for record in read_records(directory)]
            durable_lsn = self._survived_lsn(checkpoints, durable_bytes)
            # Exactly the fsync-covered prefix survives: every record at or
            # below the watermark (acked-durable must survive), none above it
            # (our cut deletes the whole un-fsynced tail), no torn mix.
            assert survivors == list(range(1, durable_lsn + 1))
            assert durable_lsn <= acked_lsn
            saw_tail_loss |= durable_lsn < acked_lsn
            saw_full_coverage |= durable_lsn == acked_lsn
            segment.write_bytes(original)  # restore for the next cut
        # The sweep must exercise both regimes or it proves nothing.
        assert saw_tail_loss, "no checkpoint had an un-fsynced acked tail"
        assert saw_full_coverage, "no checkpoint was fully fsynced"

    def test_always_policy_never_loses_an_acked_record(self, tmp_path):
        """The contrast case: under ``fsync="always"`` every ack *is* the
        watermark, so the same power cut loses nothing."""
        directory = tmp_path / "wal"
        segment, checkpoints = self._run_appends(directory, "always",
                                                 batch_bytes=1 << 20)
        original = segment.read_bytes()
        for acked_lsn, durable_bytes, file_bytes in checkpoints:
            assert durable_bytes == file_bytes  # fsynced before the ack
            segment.write_bytes(original[:durable_bytes])
            survivors = [record.lsn for record in read_records(directory)]
            assert survivors == list(range(1, acked_lsn + 1)), (
                f"fsync=always lost an acked record at lsn {acked_lsn}")
            segment.write_bytes(original)

    def test_compact_record_is_durable_even_under_batch(self, tmp_path):
        """``append_compact`` force-syncs regardless of policy: a power cut
        right after the ack can never lose the compaction barrier — or any
        record before it."""
        directory = tmp_path / "wal"
        watermark = _DurabilityWatermark()
        previous = fsio.set_hook(watermark)
        try:
            with WriteAheadLog(directory, fsync="batch",
                               batch_bytes=1 << 20) as wal:
                (segment,) = directory.glob("wal-*.log")
                wal.append_insert(_rows(2, seed=80))
                wal.append_delete(1)
                compact_lsn = wal.append_compact()
                durable_bytes = watermark.durable[str(segment)]
                assert durable_bytes == segment.stat().st_size
        finally:
            fsio.set_hook(previous)
        original = segment.read_bytes()
        segment.write_bytes(original[:durable_bytes])
        survivors = [record.lsn for record in read_records(directory)]
        assert survivors == [1, 2, compact_lsn], (
            "the forced compact fsync must cover every earlier record too")

    def test_recovery_from_power_cut_is_a_clean_prefix(self, tmp_path,
                                                       small_rows):
        """End to end through ``DynamicIndex.recover``: cut the un-fsynced
        tail of a batch-policy log and recovery still lands on a clean
        prefix of the acked operations, bit-identical to replaying them."""
        queries = _rows(3, seed=91)
        wal_dir = tmp_path / "wal"
        dynamic = _build_dynamic(small_rows, wal_dir=wal_dir,
                                 wal_fsync="batch")
        dynamic.save(tmp_path / "snap")
        # Shrink the batch threshold so the short script below straddles
        # several fsync boundaries and ends on an un-fsynced tail.
        dynamic._wal._batch_bytes = 400
        segment = sorted(wal_dir.glob("wal-*.log"))[-1]
        watermark = _DurabilityWatermark()
        previous = fsio.set_hook(watermark)
        try:
            extra = _rows(6, seed=92)
            for position in range(len(extra)):
                dynamic.insert(extra[position])
            dynamic.delete(1)
            durable_bytes = watermark.durable.get(str(segment), 0)
            # Abandon without close(): close would fsync the tail away.
            raw = segment.read_bytes()
        finally:
            fsio.set_hook(previous)
        assert 0 < durable_bytes < len(raw), \
            "need a durable prefix and an un-fsynced tail for this cut"
        segment.write_bytes(raw[:durable_bytes])

        recovered = DynamicIndex.recover(tmp_path / "snap", wal_dir)
        surviving = read_records(wal_dir)
        # The survivors are a proper, clean prefix of the 7 acked operations.
        assert [record.lsn for record in surviving] == \
            list(range(1, len(surviving) + 1))
        assert 0 < len(surviving) < 7
        replayed = _build_dynamic(small_rows)
        for record in surviving:
            if record.op == OP_INSERT:
                replayed.insert_batch(record.values)
            else:
                replayed.delete(record.row)
        assert _signature(recovered, queries) == _signature(replayed, queries)
        recovered.close()
        replayed.close()


# ------------------------------------------------------- replay bit-identity


class TestReplayBitIdentity:
    @pytest.mark.parametrize("fsync", ["always", "batch", "off"])
    def test_abandoned_process_recovers_bit_identically(self, tmp_path, fsync):
        base = _rows(24, seed=40)
        queries = _rows(3, seed=41)
        work = tmp_path / fsync
        dynamic = _build_dynamic(base, wal_dir=work / "wal", wal_fsync=fsync)
        dynamic.save(work / "snap")
        dynamic.insert_batch(_rows(4, seed=42))
        dynamic.delete(3)
        dynamic.compact()
        dynamic.insert_batch(_rows(2, seed=43))
        dynamic.delete(0)
        expected = dynamic.knn_batch(queries, k=3, num_workers=1)
        # Abandon without close(): the process "dies" with buffers unflushed
        # to stable storage (page-cache contents survive a process crash).
        recovered = DynamicIndex.recover(work / "snap", work / "wal",
                                         wal_fsync=fsync)
        observed = recovered.knn_batch(queries, k=3, num_workers=1)
        for expected_result, observed_result in zip(expected, observed):
            np.testing.assert_array_equal(expected_result.indices,
                                          observed_result.indices)
            np.testing.assert_array_equal(expected_result.distances,
                                          observed_result.distances)
        # The recovered index accepts new writes through the re-attached log.
        recovered.insert_batch(_rows(1, seed=44))
        assert recovered.delta_count >= 1
        recovered.close()
        dynamic.close()

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_interleavings_crash_points_and_policies_property(self, data,
                                                              tmp_path_factory):
        """Hypothesis sweep: random op interleavings × crash point × fsync.

        Whatever interleaving of insert/delete/compact runs, and wherever in
        its durable-effect stream the process dies, recovery lands exactly on
        an operation-boundary state.
        """
        fsync = data.draw(st.sampled_from(["always", "batch", "off"]),
                          label="fsync")
        kinds = data.draw(st.lists(st.sampled_from(["insert", "delete",
                                                    "compact"]),
                                   min_size=1, max_size=5),
                          label="ops")
        base = _rows(12, seed=50)
        queries = _rows(2, seed=51)
        work = tmp_path_factory.mktemp("hypothesis-wal")

        def run(dynamic, on_boundary=None):
            """Apply the drawn script, deterministically per ``kinds``."""
            alive = list(range(len(base)))
            next_id = len(base)
            for position, kind in enumerate(kinds):
                if kind == "insert":
                    count = 1 + position % 2
                    dynamic.insert_batch(_rows(count, seed=60 + position))
                    for _ in range(count):
                        alive.append(next_id)
                        next_id += 1
                elif kind == "delete" and len(alive) > 2:
                    dynamic.delete(alive.pop(position % len(alive)))
                elif kind == "compact":
                    dynamic.compact()
                    alive = list(range(len(alive)))
                    next_id = len(alive)
                if on_boundary is not None:
                    on_boundary(dynamic)

        # Reference run records the signature at every operation boundary.
        signatures = []
        reference = _build_dynamic(base)
        signatures.append(_signature(reference, queries))
        run(reference,
            on_boundary=lambda dyn: signatures.append(_signature(dyn, queries)))

        # Enumerate the durable effects of the whole logged run.
        injector = FaultInjector()
        probe_dir = work / "probe"
        probe = _build_dynamic(base, wal_dir=probe_dir / "wal",
                               wal_fsync=fsync)
        probe.save(probe_dir / "snap")
        total_effects = injector.count_ops(lambda: run(probe))
        probe.close()
        if total_effects == 0:
            return  # the drawn script is all no-ops (e.g. empty compacts)

        point = data.draw(st.integers(min_value=0,
                                      max_value=total_effects - 1),
                          label="crash_point")
        crash_dir = work / "crash"
        dynamic = _build_dynamic(base, wal_dir=crash_dir / "wal",
                                 wal_fsync=fsync)
        dynamic.save(crash_dir / "snap")
        with pytest.raises(SimulatedCrash):
            injector.crash_at(point, lambda: run(dynamic))

        recovered = DynamicIndex.recover(crash_dir / "snap", crash_dir / "wal")
        observed = _signature(recovered, queries)
        assert observed in signatures, (
            "recovered state is not an operation-boundary state")
        recovered.close()
