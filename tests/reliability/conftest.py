"""Shared fixtures of the reliability suite (see ``fault_harness.py``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import fsio
from repro.datasets.synthetic import random_walk

from fault_harness import FaultInjector


@pytest.fixture()
def injector():
    """A fresh :class:`FaultInjector`; always leaves the fsio hook clean."""
    fault_injector = FaultInjector()
    yield fault_injector
    fsio.set_hook(None)


@pytest.fixture(scope="session")
def small_rows() -> np.ndarray:
    """A deterministic pool of raw series to build tiny indexes from."""
    return random_walk(64, 32, seed=424242)
