"""Disk-full robustness: ``ENOSPC`` surfaces typed, state stays old-or-new.

The contract under test (see :mod:`repro.core.fsio`,
:mod:`repro.index.wal`, :mod:`repro.index.persistence`):

* an ``ENOSPC`` / ``EDQUOT`` from any durable effect surfaces as a typed
  :class:`~repro.core.errors.StorageFullError` (a ``ReproError``; HTTP 507
  through the serving layer) — never a raw ``OSError``;
* **WAL** — a failed append leaves the log's tail cleanly truncated: the
  LSN sequence is unbroken, ``last_lsn`` is not bumped (write-ahead holds:
  nothing unlogged can have been acked), reopen/replay see no torn record,
  and the next append after space frees continues the sequence;
* **snapshots** — a commit that hits a full volume leaves the old complete
  snapshot (or no snapshot, for a fresh save) on disk, reclaims its own
  staging bytes so the retry has room, and a retry after space frees
  succeeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError, StorageFullError
from repro.index.persistence import load_index, save_index
from repro.index.sofa import SofaIndex
from repro.index.wal import WriteAheadLog, read_records
from repro.serve.errors import status_for


def _build_index(rows: np.ndarray) -> SofaIndex:
    index = SofaIndex(word_length=8, alphabet_size=16, leaf_size=10)
    index.build(rows)
    return index


class TestTyping:
    def test_storage_full_is_a_repro_error_with_507(self):
        error = StorageFullError("no space left")
        assert isinstance(error, ReproError)
        assert status_for(error) == 507

    def test_fsio_translates_enospc(self, tmp_path, injector):
        from repro.core import fsio

        with pytest.raises(StorageFullError):
            injector.disk_full_at(
                0, lambda: fsio.write_bytes(tmp_path / "f", b"x"))

    def test_other_oserrors_pass_through_untranslated(self, tmp_path):
        from repro.core import fsio

        with pytest.raises(OSError) as caught:
            fsio.write_bytes(tmp_path / "missing-dir" / "f", b"x")
        assert not isinstance(caught.value, StorageFullError)


class TestWalDiskFull:
    ROWS = np.arange(8.0).reshape(2, 4)

    def test_failed_append_leaves_clean_tail_and_stable_lsn(
            self, tmp_path, injector):
        with WriteAheadLog(tmp_path / "wal", fsync="always") as wal:
            wal.append_insert(self.ROWS)
            ops = injector.count_ops(lambda: wal.append_insert(self.ROWS))
            assert ops >= 2  # at least the append and its fsync
            lsn_before = wal.last_lsn
            for point in range(ops):
                with pytest.raises(StorageFullError):
                    injector.disk_full_at(
                        point, lambda: wal.append_insert(self.ROWS),
                        persistent=True)
                # Write-ahead holds: the failed record was never acked, so
                # the LSN must not move and the tail must replay clean.
                assert wal.last_lsn == lsn_before
                records = read_records(tmp_path / "wal")
                assert [record.lsn for record in records] == \
                    list(range(1, lsn_before + 1))
            # Space freed: the sequence continues with no gap.
            assert wal.append_insert(self.ROWS) == lsn_before + 1
        records = read_records(tmp_path / "wal")
        assert [record.lsn for record in records] == \
            list(range(1, lsn_before + 2))

    def test_reopen_after_enospc_is_clean(self, tmp_path, injector):
        with WriteAheadLog(tmp_path / "wal", fsync="always") as wal:
            wal.append_insert(self.ROWS)
            with pytest.raises(StorageFullError):
                injector.disk_full_at(
                    0, lambda: wal.append_insert(self.ROWS), persistent=True)
        with WriteAheadLog(tmp_path / "wal", fsync="always") as wal:
            assert wal.last_lsn == 1
            assert wal.append_insert(self.ROWS) == 2

    def test_delete_append_enospc_matches_insert_path(self, tmp_path,
                                                      injector):
        with WriteAheadLog(tmp_path / "wal", fsync="always") as wal:
            wal.append_insert(self.ROWS)
            with pytest.raises(StorageFullError):
                injector.disk_full_at(0, lambda: wal.append_delete(0),
                                      persistent=True)
            assert wal.last_lsn == 1
            assert wal.append_delete(0) == 2


class TestSnapshotDiskFull:
    def test_fresh_commit_reclaims_staging_and_retries(self, tmp_path,
                                                       injector, small_rows):
        index = _build_index(small_rows)
        ops = injector.count_ops(
            lambda: save_index(index, tmp_path / "probe"))
        for point in range(ops):
            target = tmp_path / f"snap-{point}"
            raised = False
            try:
                injector.disk_full_at(
                    point, lambda: save_index(index, target),
                    persistent=True)
            except StorageFullError:
                raised = True
            staging = target.parent / f".{target.name}.saving"
            assert not staging.exists(), \
                f"point {point}: staging bytes not reclaimed"
            if target.exists():
                # Old-or-new, fresh flavor: if anything is there, it is the
                # complete new snapshot (the fault hit after the rename).
                loaded = load_index(target)
                assert loaded.tree.dataset.values.shape == small_rows.shape
            else:
                assert raised
                # Space freed: the retry lands on clean ground.
                save_index(index, target)
                load_index(target)

    def test_in_place_commit_keeps_old_generation(self, tmp_path, injector,
                                                  small_rows):
        index = _build_index(small_rows)
        target = tmp_path / "snap"
        save_index(index, target)
        ops = injector.count_ops(lambda: save_index(index, target))
        for point in range(ops):
            fresh = tmp_path / f"inplace-{point}"
            save_index(index, fresh)
            try:
                injector.disk_full_at(
                    point, lambda: save_index(index, fresh), persistent=True)
            except StorageFullError:
                pass
            # Old-or-new, in-place flavor: whichever generation the manifest
            # references is complete and loads.
            loaded = load_index(fresh)
            assert loaded.tree.dataset.values.shape == small_rows.shape
            assert not (fresh / "manifest.json.tmp").exists(), \
                f"point {point}: uncommitted manifest left behind"
        # And a retry after space frees commits normally.
        save_index(index, target)
        load_index(target)
