"""Fault-injection primitives shared by the reliability suite.

The persistence layer and the write-ahead log route every durable effect
(write, fsync, rename, unlink, ...) through :mod:`repro.core.fsio`.  The
:class:`FaultInjector` installs an fsio hook that observes those effects in
order and can raise :class:`SimulatedCrash` immediately *before* a chosen
one — the state such a crash leaves on disk is exactly what a process dying
between two durable operations would leave.  Sweeping the crash point over
every enumerated effect of an operation proves the commit protocols leave
either the old or the new complete state, never a torn mix.
"""

from __future__ import annotations

from repro.core import fsio


class SimulatedCrash(BaseException):
    """The injected process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    library-level ``except Exception`` handler can accidentally swallow the
    simulated crash and keep "running" past it.
    """


class FaultInjector:
    """Counts fsio effects and optionally crashes at a chosen one.

    Usage::

        ops = injector.count_ops(lambda: index.save(path))   # enumerate
        for point in range(ops):                              # sweep
            ...fresh state...
            with pytest.raises(SimulatedCrash):
                injector.crash_at(point, lambda: index.save(path))
            ...assert the on-disk invariant...

    ``trace`` holds the ``(operation, path)`` pairs observed by the most
    recent :meth:`count_ops` run, for tests that target a specific effect
    (e.g. "the manifest rename") rather than a sweep.
    """

    def __init__(self) -> None:
        self.trace: "list[tuple[str, str]]" = []

    def count_ops(self, action) -> int:
        """Run ``action`` recording every durable effect; return the count."""
        self.trace = []

        def recorder(operation: str, path: str) -> None:
            self.trace.append((operation, path))

        previous = fsio.set_hook(recorder)
        try:
            action()
        finally:
            fsio.set_hook(previous)
        return len(self.trace)

    def crash_at(self, point: int, action):
        """Run ``action`` but raise :class:`SimulatedCrash` before effect
        number ``point`` (0-based); effects before it happen normally."""
        remaining = point

        def bomb(operation: str, path: str) -> None:
            nonlocal remaining
            if remaining == 0:
                raise SimulatedCrash(f"crashed before {operation} of {path}")
            remaining -= 1

        previous = fsio.set_hook(bomb)
        try:
            return action()
        finally:
            fsio.set_hook(previous)
