"""Fault-injection primitives shared by the reliability suite.

The persistence layer and the write-ahead log route every durable effect
(write, fsync, rename, unlink, ...) through :mod:`repro.core.fsio`.  The
:class:`FaultInjector` installs an fsio hook that observes those effects in
order and can raise :class:`SimulatedCrash` immediately *before* a chosen
one — the state such a crash leaves on disk is exactly what a process dying
between two durable operations would leave.  Sweeping the crash point over
every enumerated effect of an operation proves the commit protocols leave
either the old or the new complete state, never a torn mix.
"""

from __future__ import annotations

import errno
import time

from repro.core import fsio
from repro.core.errors import CorruptionError

#: Operations that still succeed on a full volume — deleting and truncating
#: *free* space.  ``disk_full_at(..., persistent=True)`` spares these, which
#: is what lets the commit protocols' cleanup paths run under the fault.
_SPACE_FREEING_OPS = frozenset({"unlink", "rmtree", "truncate"})


class SimulatedCrash(BaseException):
    """The injected process death.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    library-level ``except Exception`` handler can accidentally swallow the
    simulated crash and keep "running" past it.
    """


class FaultInjector:
    """Counts fsio effects and optionally crashes at a chosen one.

    Usage::

        ops = injector.count_ops(lambda: index.save(path))   # enumerate
        for point in range(ops):                              # sweep
            ...fresh state...
            with pytest.raises(SimulatedCrash):
                injector.crash_at(point, lambda: index.save(path))
            ...assert the on-disk invariant...

    ``trace`` holds the ``(operation, path)`` pairs observed by the most
    recent :meth:`count_ops` run, for tests that target a specific effect
    (e.g. "the manifest rename") rather than a sweep.
    """

    def __init__(self) -> None:
        self.trace: "list[tuple[str, str]]" = []

    def count_ops(self, action) -> int:
        """Run ``action`` recording every durable effect; return the count."""
        self.trace = []

        def recorder(operation: str, path: str) -> None:
            self.trace.append((operation, path))

        previous = fsio.set_hook(recorder)
        try:
            action()
        finally:
            fsio.set_hook(previous)
        return len(self.trace)

    def crash_at(self, point: int, action):
        """Run ``action`` but raise :class:`SimulatedCrash` before effect
        number ``point`` (0-based); effects before it happen normally."""
        remaining = point

        def bomb(operation: str, path: str) -> None:
            nonlocal remaining
            if remaining == 0:
                raise SimulatedCrash(f"crashed before {operation} of {path}")
            remaining -= 1

        previous = fsio.set_hook(bomb)
        try:
            return action()
        finally:
            fsio.set_hook(previous)

    def disk_full_at(self, point: int, action, *, persistent: bool = False):
        """Run ``action`` but fail effect number ``point`` with ``ENOSPC``.

        The raw :class:`OSError` is raised from the hook *inside* the fsio
        seam, so it takes exactly the translation path a real full volume
        takes (surfacing as a typed ``StorageFullError``).  With
        ``persistent=True`` the volume *stays* full — every later effect
        fails too, except the space-freeing ones (:data:`_SPACE_FREEING_OPS`),
        which is how cleanup paths behave on a genuinely full disk.  The
        default one-shot mode models space freed immediately after the
        failure (retry-after-free scenarios).
        """
        remaining = point

        def bomb(operation: str, path: str) -> None:
            nonlocal remaining
            if remaining > 0:
                remaining -= 1
                return
            if remaining < 0:
                return
            if persistent and operation in _SPACE_FREEING_OPS:
                return
            if not persistent:
                remaining = -1
            raise OSError(errno.ENOSPC, "No space left on device")

        previous = fsio.set_hook(bomb)
        try:
            return action()
        finally:
            fsio.set_hook(previous)


class FlakyShard:
    """Fault-injecting proxy around one shard's engine.

    Installed in place of a :class:`ShardedIndex` shard's loaded engine
    (``sharded._shards[i].engine = FlakyShard(engine, ...)``); every
    attribute the scatter path touches forwards to the real engine, while
    the query entry points inject one of three failure shapes:

    * ``fail_times=N`` — the next N ``knn``/``knn_batch`` calls raise
      ``error_factory()`` (default: a transient ``RuntimeError``), then the
      shard answers normally: the fail-N-times-then-succeed retry scenario.
      Pass ``error_factory=lambda: CorruptionError(...)`` (see
      :func:`corruption_error`) for the persistent-failure classification.
    * ``hang_s=S`` — every call sleeps ``S`` seconds *before* answering,
      for deadline-abandonment scenarios (pick ``S`` past the query
      budget plus gather grace).

    ``calls`` counts query attempts observed, so tests can assert how many
    retries actually reached the shard.
    """

    def __init__(self, engine, *, fail_times: int = 0, error_factory=None,
                 hang_s: float = 0.0) -> None:
        self._engine = engine
        self.fail_times = fail_times
        self.error_factory = error_factory or (
            lambda: RuntimeError("injected transient shard fault"))
        self.hang_s = hang_s
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def _inject(self) -> None:
        self.calls += 1
        if self.hang_s:
            time.sleep(self.hang_s)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise self.error_factory()

    def knn(self, *args, **kwargs):
        self._inject()
        return self._engine.knn(*args, **kwargs)

    def knn_batch(self, *args, **kwargs):
        self._inject()
        return self._engine.knn_batch(*args, **kwargs)


def corruption_error() -> CorruptionError:
    """An ``error_factory`` for :class:`FlakyShard`'s persistent-failure mode."""
    return CorruptionError("injected shard corruption")
