"""Hot reload under load: compaction swaps generations under a query storm.

The serving contract under test: a thread hammering ``/knn`` while ``compact``
rebuilds the tree, swaps generations atomically and re-saves the snapshot in
place (unlinking the previous generation's payload files) must never observe

* an error of any kind, or
* an answer that is not bit-identical to the pre-compaction answer.

Bit-identity holds because nothing is ever net-deleted here: compaction
preserves base row ids and renumbers surviving delta rows onto the same global
ids they already had, and exact search recomputes every reported distance
canonically — so the same query over the same surviving rows yields the same
ids and the same float64 distances on every generation.  The in-place re-save
makes the unlink scenario real: queries in flight during the save hold mmaps
of payload files that get unlinked under them (their inodes stay alive until
the mappings close).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import euclidean, znormalize
from repro.datasets.synthetic import random_walk
from repro.index.sofa import SofaIndex
from repro.serve import SearchApp, ServeConfig

QUERY_THREADS = 4
COMPACTION_ROUNDS = 3


@pytest.fixture()
def reload_app(tmp_path):
    """A writable snapshot-backed index: 300 base rows + 40 buffered inserts."""
    base_rows = random_walk(300, 64, seed=521)
    extra_rows = random_walk(40, 64, seed=522)
    index = SofaIndex(word_length=8, alphabet_size=16, leaf_size=16)
    dynamic = index.build(base_rows).dynamic()
    dynamic.insert_batch(extra_rows)
    snapshot = tmp_path / "serving-snapshot"
    dynamic.save(snapshot)
    app = SearchApp(ServeConfig(max_k=10))
    app.load_snapshot("live", snapshot, writable=True, mmap=True)
    yield app, snapshot
    app.close()


def test_hot_reload_under_query_storm(reload_app):
    app, snapshot = reload_app
    queries = random_walk(8, 64, seed=523)
    expected = [app.knn("live", query, k=3) for query in queries]

    failures: list = []
    stop = threading.Event()

    def hammer(worker: int) -> None:
        position = worker
        while not stop.is_set():
            want = expected[position % len(queries)]
            try:
                got = app.knn("live", queries[position % len(queries)], k=3)
            except Exception as error:  # noqa: BLE001 - the contract: no errors
                failures.append(("error", repr(error)))
                return
            if got["ids"] != want["ids"] or got["distances"] != want["distances"]:
                failures.append(("mismatch", got, want))
                return
            position += 1

    threads = [threading.Thread(target=hammer, args=(worker,))
               for worker in range(QUERY_THREADS)]
    for thread in threads:
        thread.start()
    try:
        generation = 1
        for round_index in range(COMPACTION_ROUNDS):
            # Make the swap real without changing any answer: buffer writes
            # that cancel out (insert, then tombstone the inserted rows), so
            # compaction has pending work but the surviving set is unchanged.
            churn_rows = random_walk(5, 64, seed=600 + round_index)
            # Deterministic guard on the seeds: no churn row may enter any
            # storm query's top-3, or the insert..delete window would change
            # answers mid-storm and the bit-identity check would be a flake.
            for row in churn_rows:
                for query, want in zip(queries, expected):
                    assert (euclidean(znormalize(row), znormalize(query))
                            > want["distances"][-1])
            churn = app.insert("live", churn_rows)
            for row in churn["ids"]:
                app.delete("live", row)
            payload = app.compact("live")
            generation += 1
            assert payload["generation"] == generation
            assert payload["saved"] is True
            assert payload["dropped_rows"] == 5
            assert payload["num_surviving"] == 340
            assert not failures, failures[:3]
    finally:
        stop.set()
        for thread in threads:
            thread.join(30)
    assert not failures, failures[:3]

    # The storm kept answering across all generations...
    report = app.stats()["indexes"]["live"]
    assert report["generation"] == COMPACTION_ROUNDS + 1
    assert report["search"]["queries"] > len(expected)
    # ...and answers on the final generation are still the original ones.
    for query, want in zip(queries, expected):
        got = app.knn("live", query, k=3)
        assert got["ids"] == want["ids"]
        assert got["distances"] == want["distances"]


def test_reload_survives_restart_from_reloaded_snapshot(reload_app):
    """After in-place re-saves, a fresh process loading the same directory
    serves the same answers — the snapshot on disk is never torn."""
    app, snapshot = reload_app
    queries = random_walk(4, 64, seed=524)
    expected = [app.knn("live", query, k=2) for query in queries]
    churn = app.insert("live", random_walk(3, 64, seed=525))
    for row in churn["ids"]:
        app.delete("live", row)
    app.compact("live")

    restarted = SearchApp(ServeConfig(max_k=10))
    try:
        restarted.load_snapshot("live", snapshot, writable=True, mmap=True)
        for query, want in zip(queries, expected):
            got = restarted.knn("live", query, k=2)
            assert got["ids"] == want["ids"]
            assert got["distances"] == want["distances"]
    finally:
        restarted.close()
