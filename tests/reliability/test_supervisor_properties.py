"""Property tests for the supervision policies (pure, time-injected pieces).

* :meth:`SupervisorPolicy.restart_delay_s` is a **pure function** of
  ``(seed, shard, restart)``: equal inputs give bit-equal delays (crash
  scenarios replay identically in tests), and every delay respects the
  ``restart_cap_s * (1 + jitter)`` bound and the monotone pre-jitter ladder.
* :class:`CrashLoopBreaker` trips after **exactly** ``threshold`` crashes
  inside one sliding window — never before, never twice without a reset —
  and a crash drip slower than the window never trips it.
* :meth:`reset` (what a probe readmission calls) returns the breaker to a
  clean slate: the ladder starts over.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.shard_health import CrashLoopBreaker, SupervisorPolicy

policies = st.builds(
    SupervisorPolicy,
    restart_base_s=st.floats(min_value=0.001, max_value=0.5),
    restart_cap_s=st.floats(min_value=0.001, max_value=5.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)


class TestRestartBackoffDeterminism:
    @settings(max_examples=200, deadline=None)
    @given(policy=policies, restart=st.integers(min_value=0, max_value=40),
           shard=st.integers(min_value=0, max_value=64))
    def test_deterministic_and_bounded(self, policy, restart, shard):
        first = policy.restart_delay_s(restart, shard)
        second = policy.restart_delay_s(restart, shard)
        assert first == second  # bit-equal: pure function of the inputs
        assert 0.0 <= first <= policy.restart_cap_s * (1.0 + policy.jitter)

    @settings(max_examples=100, deadline=None)
    @given(policy=policies, shard=st.integers(min_value=0, max_value=8))
    def test_prejitter_ladder_is_monotone_to_the_cap(self, policy, shard):
        import random

        # Strip the jitter term to observe the raw exponential ladder.
        def raw(restart: int) -> float:
            mixed = (policy.seed * 1_000_003 + shard * 8_191
                     + restart * 131) & 0xFFFFFFFF
            unit = random.Random(mixed).random()
            return policy.restart_delay_s(restart, shard) \
                / (1.0 + policy.jitter * unit)

        ladder = [raw(restart) for restart in range(12)]
        for earlier, later in zip(ladder, ladder[1:]):
            assert later >= earlier * (1 - 1e-9)
        assert max(ladder) <= policy.restart_cap_s * (1 + 1e-9)

    def test_distinct_shards_get_distinct_jitter(self):
        policy = SupervisorPolicy(jitter=1.0, seed=7)
        delays = {policy.restart_delay_s(3, shard) for shard in range(16)}
        # Not a hard guarantee per pair, but with full jitter the mixing
        # must not collapse the fleet onto one synchronized restart time.
        assert len(delays) > 1


class TestCrashLoopBreaker:
    @settings(max_examples=100, deadline=None)
    @given(threshold=st.integers(min_value=1, max_value=10),
           window=st.floats(min_value=0.5, max_value=100.0))
    def test_trips_after_exactly_threshold_in_window(self, threshold, window):
        breaker = CrashLoopBreaker(threshold, window)
        now = 1000.0
        step = window / (threshold + 1)  # all crashes inside one window
        for crash in range(threshold - 1):
            assert breaker.record_crash(now + crash * step) is False
            assert breaker.tripped is False
        assert breaker.record_crash(now + (threshold - 1) * step) is True
        assert breaker.tripped is True

    @settings(max_examples=100, deadline=None)
    @given(threshold=st.integers(min_value=2, max_value=10),
           window=st.floats(min_value=0.5, max_value=100.0))
    def test_slow_drip_never_trips(self, threshold, window):
        breaker = CrashLoopBreaker(threshold, window)
        now = 1000.0
        for crash in range(threshold * 3):
            # Each crash ages the previous ones out of the window first.
            assert breaker.record_crash(now + crash * window * 1.01) is False
        assert breaker.tripped is False

    def test_trip_edge_fires_once_until_reset(self):
        breaker = CrashLoopBreaker(2, 10.0)
        assert breaker.record_crash(0.0) is False
        assert breaker.record_crash(1.0) is True
        # Still tripped: further crashes must not re-announce the edge.
        assert breaker.record_crash(2.0) is False
        assert breaker.tripped is True
        breaker.reset()
        assert breaker.tripped is False
        # A clean slate: the same sequence trips at the same point again.
        assert breaker.record_crash(100.0) is False
        assert breaker.record_crash(101.0) is True

    @settings(max_examples=50, deadline=None)
    @given(threshold=st.integers(min_value=1, max_value=6),
           times=st.lists(st.floats(min_value=0.0, max_value=1000.0),
                          min_size=0, max_size=40))
    def test_trip_edge_is_announced_at_most_once_per_reset(self, threshold,
                                                           times):
        breaker = CrashLoopBreaker(threshold, 5.0)
        edges = sum(1 for t in sorted(times) if breaker.record_crash(t))
        assert edges <= 1
