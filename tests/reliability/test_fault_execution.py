"""Fault-tolerant execution: dying workers, search deadlines, typed validation.

Covers the execution-layer half of the reliability contract:

* a worker raising mid-drain cannot wedge :class:`~repro.parallel.pool.WorkerPool`
  — the first (deterministic) exception propagates, remaining items are
  cancelled, and a persistent executor stays reusable;
* ``knn``/``knn_batch`` with ``timeout_s`` degrade gracefully: the best-so-far
  is finalized with ``stats.timed_out=True`` and every reported distance
  stays exact;
* background maintenance failures surface on ``wait()`` with the original
  traceback, and ``wait(timeout=...)`` bounds a hung task;
* garbage inputs (NaN/Inf, wrong dtype, wrong length) raise typed
  :class:`~repro.core.errors.ValidationError` at the API boundary.
"""

from __future__ import annotations

import threading
import traceback

import numpy as np
import pytest

from repro.core.errors import (
    IndexError_,
    InvalidParameterError,
    SearchError,
    ValidationError,
)
from repro.datasets.synthetic import random_walk
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex
from repro.parallel.pool import BackgroundTask, WorkerPool

SERIES_LENGTH = 64


@pytest.fixture(scope="module")
def built_index():
    rows = random_walk(300, SERIES_LENGTH, seed=77)
    return MessiIndex(word_length=8, alphabet_size=16, leaf_size=10).build(rows)


@pytest.fixture(scope="module")
def queries():
    return random_walk(4, SERIES_LENGTH, seed=78)


# ------------------------------------------------------------ worker deaths


class BoomError(RuntimeError):
    pass


class TestPoolSurvivesWorkerDeath:
    def test_map_propagates_first_error_deterministically(self):
        pool = WorkerPool(4)

        def function(item):
            if item in (3, 5):
                raise BoomError(f"worker died on {item}")
            return item * 2

        with pytest.raises(BoomError, match="died on 3"):
            pool.map(function, list(range(50)))

    def test_map_cancels_remaining_items(self):
        pool = WorkerPool(2)
        processed: "list[int]" = []
        lock = threading.Lock()

        def function(item):
            if item == 0:
                raise BoomError("first item dies")
            with lock:
                processed.append(item)
            return item

        with pytest.raises(BoomError):
            pool.map(function, list(range(1000)))
        # The cancel flag stops the drains long before the queue empties.
        assert len(processed) < 1000

    def test_persistent_pool_reusable_after_failure(self):
        pool = WorkerPool(4, persistent=True)

        def function(item):
            if item == 7:
                raise BoomError("boom")
            return item + 1

        with pytest.raises(BoomError):
            pool.map(function, list(range(20)))
        # Same executor, next call: full results, no wedged futures.
        assert pool.map(lambda item: item + 1, list(range(20))) == list(
            range(1, 21))
        assert pool._executor is not None

    def test_map_shared_propagates_and_returns_no_partial_states(self):
        pool = WorkerPool(4)

        def function(item, state):
            if item == 13:
                raise BoomError("shared drain dies")
            state.append(item)

        with pytest.raises(BoomError):
            pool.map_shared(function, list(range(100)), make_state=list,
                            chunk_size=4)

    def test_original_traceback_reaches_the_caller(self):
        pool = WorkerPool(3)

        def doomed(item):
            raise BoomError("original frames wanted")

        try:
            pool.map(doomed, [1, 2, 3])
        except BoomError as error:
            frames = "".join(traceback.format_tb(error.__traceback__))
            assert "doomed" in frames
        else:  # pragma: no cover
            pytest.fail("expected BoomError")


class TestBackgroundTask:
    def test_wait_reraises_with_original_traceback(self):
        def failing():
            raise BoomError("background failure")

        task = BackgroundTask(failing)
        try:
            task.wait()
        except BoomError as error:
            frames = "".join(traceback.format_tb(error.__traceback__))
            assert "failing" in frames
        else:  # pragma: no cover
            pytest.fail("expected BoomError")

    def test_wait_timeout_bounds_a_hung_task_and_is_retriable(self):
        release = threading.Event()
        task = BackgroundTask(lambda: (release.wait(5), "done")[1])
        with pytest.raises(TimeoutError):
            task.wait(timeout=0.05)
        release.set()
        assert task.wait(timeout=5) == "done"

    def test_failed_background_compaction_surfaces_on_wait(self):
        rows = random_walk(8, 32, seed=80)
        dynamic = MessiIndex(word_length=8, alphabet_size=16,
                             leaf_size=4).build(rows).dynamic()
        for row in range(len(rows)):
            dynamic.delete(row)
        task = dynamic.compact_in_background()
        with pytest.raises(IndexError_, match="all deleted"):
            task.wait(timeout=30)


# ---------------------------------------------------------- search deadlines


class TestSearchTimeout:
    def test_invalid_timeout_rejected(self, built_index, queries):
        with pytest.raises(InvalidParameterError, match="timeout_s"):
            built_index.knn(queries[0], k=3, timeout_s=0)
        with pytest.raises(InvalidParameterError, match="timeout_s"):
            built_index.knn_batch(queries, k=3, timeout_s=-1.0)

    def test_expired_deadline_finalizes_best_so_far(self, built_index,
                                                    queries):
        full = built_index.knn(queries[0], k=5)
        assert full.stats.timed_out is False
        rushed = built_index.knn(queries[0], k=5, timeout_s=1e-9)
        assert rushed.stats.timed_out is True
        # Graceful degradation: up to k answers, every distance exact and
        # drawn from the refined set — so each reported pair also appears in
        # the full answer's candidate universe with the same distance.
        assert len(rushed.indices) <= 5
        assert np.all(np.diff(rushed.distances) >= 0)
        values = built_index.tree.dataset.values
        from repro.core.normalization import znormalize

        normalized = znormalize(queries[0])
        for row, distance in zip(rushed.indices, rushed.distances):
            exact = float(np.sqrt(np.sum((values[row] - normalized) ** 2)))
            assert distance == pytest.approx(exact, abs=1e-9)

    def test_generous_deadline_changes_nothing(self, built_index, queries):
        full = built_index.knn(queries[0], k=5)
        relaxed = built_index.knn(queries[0], k=5, timeout_s=3600.0)
        np.testing.assert_array_equal(full.indices, relaxed.indices)
        np.testing.assert_array_equal(full.distances, relaxed.distances)
        assert relaxed.stats.timed_out is False

    def test_batch_timeout_marks_stats_per_query(self, built_index, queries):
        rushed = built_index.knn_batch(queries, k=3, timeout_s=1e-9)
        assert len(rushed) == len(queries)
        assert any(result.stats.timed_out for result in rushed)
        for result in rushed:
            assert len(result.indices) <= 3
            assert np.all(np.diff(result.distances) >= 0)

    def test_batch_generous_deadline_is_bit_identical(self, built_index,
                                                      queries):
        full = built_index.knn_batch(queries, k=3)
        relaxed = built_index.knn_batch(queries, k=3, timeout_s=3600.0)
        for full_result, relaxed_result in zip(full, relaxed):
            np.testing.assert_array_equal(full_result.indices,
                                          relaxed_result.indices)
            np.testing.assert_array_equal(full_result.distances,
                                          relaxed_result.distances)
            assert relaxed_result.stats.timed_out is False

    def test_parallel_search_respects_deadline(self, built_index, queries):
        rushed = built_index.knn(queries[0], k=5, num_workers=4,
                                 timeout_s=1e-9)
        assert rushed.stats.timed_out is True
        assert len(rushed.indices) <= 5

    def test_dynamic_index_threads_timeout(self, queries):
        rows = random_walk(60, SERIES_LENGTH, seed=81)
        dynamic = SofaIndex(word_length=8, alphabet_size=16,
                            leaf_size=8).build(rows).dynamic()
        dynamic.insert_batch(random_walk(5, SERIES_LENGTH, seed=82))
        rushed = dynamic.knn(queries[0], k=3, timeout_s=1e-9)
        assert rushed.stats.timed_out is True
        batch = dynamic.knn_batch(queries[:2], k=3, timeout_s=1e-9)
        assert any(result.stats.timed_out for result in batch)


# ------------------------------------------------------------ input hygiene


class TestInputValidation:
    @pytest.fixture(scope="class")
    def small_dynamic(self):
        rows = random_walk(30, 32, seed=90)
        return MessiIndex(word_length=8, alphabet_size=16,
                          leaf_size=8).build(rows).dynamic()

    def test_knn_rejects_nan_inf_dtype_and_length(self, built_index):
        nan_query = np.zeros(SERIES_LENGTH)
        nan_query[3] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            built_index.knn(nan_query, k=1)
        inf_query = np.zeros(SERIES_LENGTH)
        inf_query[0] = np.inf
        with pytest.raises(ValidationError, match="NaN or infinite"):
            built_index.knn(inf_query, k=1)
        with pytest.raises(ValidationError, match="length"):
            built_index.knn(np.zeros(SERIES_LENGTH + 1), k=1)
        with pytest.raises(ValidationError, match="not numeric"):
            built_index.knn(np.array(["a"] * SERIES_LENGTH, dtype=object), k=1)

    def test_knn_batch_rejects_nan_and_shape(self, built_index):
        bad = np.zeros((2, SERIES_LENGTH))
        bad[1, 5] = np.nan
        with pytest.raises(ValidationError, match="NaN"):
            built_index.knn_batch(bad, k=1)
        with pytest.raises(ValidationError, match="length"):
            built_index.knn_batch(np.zeros((2, SERIES_LENGTH - 1)), k=1)

    def test_insert_rejects_nan_inf_and_length(self, small_dynamic):
        bad = np.zeros(32)
        bad[0] = np.nan
        with pytest.raises(ValidationError):
            small_dynamic.insert(bad)
        with pytest.raises(ValidationError):
            small_dynamic.insert_batch(np.full((2, 32), np.inf))
        with pytest.raises(ValidationError):
            small_dynamic.insert(np.zeros(31))
        with pytest.raises(ValidationError):
            small_dynamic.insert_batch(
                np.array([["x"] * 32, ["y"] * 32], dtype=object))

    def test_validation_errors_are_both_families(self):
        # Queries historically raised SearchError, writes IndexError_;
        # ValidationError satisfies both catch sites.
        assert issubclass(ValidationError, SearchError)
        assert issubclass(ValidationError, IndexError_)

    def test_validation_leaves_state_unchanged(self, small_dynamic):
        before = (small_dynamic.num_surviving, small_dynamic.delta_count)
        bad = np.zeros(32)
        bad[7] = np.inf
        with pytest.raises(ValidationError):
            small_dynamic.insert(bad)
        assert (small_dynamic.num_surviving,
                small_dynamic.delta_count) == before


def test_timeout_does_not_leak_into_untimed_searches(built_index, queries):
    """A timed-out call must not poison later calls on the same engine."""
    rushed = built_index.knn(queries[1], k=3, timeout_s=1e-9)
    assert rushed.stats.timed_out is True
    calm = built_index.knn(queries[1], k=3)
    assert calm.stats.timed_out is False
    assert len(calm.indices) == 3
