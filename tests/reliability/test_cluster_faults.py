"""Process-isolated shard serving: kill -9 survival and answer identity.

The cluster contract under test (see :mod:`repro.cluster`):

* **healthy** — a :class:`~repro.cluster.ClusterIndex` answers bit-identical
  to the in-process :class:`~repro.index.sharded.ShardedIndex` over the same
  snapshot, across shard counts and ``k``;
* **kill -9** — SIGKILLing a worker mid-storm never surfaces an untyped
  error: with ``degraded="allow"`` every query answers, the degraded answers
  bit-identical to an unsharded index over the surviving shards' rows;
* **recovery** — the supervisor restarts the dead worker, the inherited
  probe loop readmits the shard, coverage returns to ``1.0``, and the
  readmission resets the supervisor's restart ladder;
* **SIGTERM** — a worker asked to stop drains and exits 0; the supervisor
  restarts it without charging the crash-loop breaker;
* **crash loop** — a worker that cannot start (bad snapshot) trips the
  breaker after exactly ``crash_loop_threshold`` rapid crashes and the
  coordinator quarantines the shard via the ``on_crash_loop`` callback;
* the cluster is **read-only**: writes raise typed errors instead of
  desyncing the coordinator's global id maps.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterIndex, ShardSupervisor, SupervisorPolicy
from repro.core.errors import ReadOnlyIndexError, ReproError
from repro.datasets.synthetic import random_walk
from repro.index.shard_health import HealthPolicy, RetryPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

SERIES_LENGTH = 40
NUM_SHARDS = 4
ROWS_PER_SHARD = 30


def _factory():
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=10)


@pytest.fixture(scope="module")
def base_rows() -> np.ndarray:
    return random_walk(NUM_SHARDS * ROWS_PER_SHARD, SERIES_LENGTH, seed=8801)


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return random_walk(5, SERIES_LENGTH, seed=8802)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory, base_rows):
    """One 4-shard snapshot on disk, shared by every cluster in the module."""
    path = tmp_path_factory.mktemp("cluster") / "shards"
    index = ShardedIndex.build(base_rows, path, num_shards=NUM_SHARDS,
                               index_factory=_factory)
    index.close()
    return path


def _fast_retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=2, backoff_base_s=0.001,
                       backoff_cap_s=0.002)


def _fast_policy(**overrides) -> SupervisorPolicy:
    defaults = dict(restart_base_s=0.02, restart_cap_s=0.1, jitter=0.0,
                    heartbeat_interval_s=0.05, crash_loop_window_s=2.0)
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


def _launch(snapshot, **overrides) -> ClusterIndex:
    options = dict(retry=_fast_retry(),
                   health=HealthPolicy(quarantine_after=2,
                                       probe_interval_s=0.1),
                   policy=_fast_policy(), start_timeout_s=60.0)
    options.update(overrides)
    return ClusterIndex.launch(snapshot, **options)


def _worker_pid(cluster: ClusterIndex, shard: int) -> int:
    pid = cluster.supervisor.report()[shard]["pid"]
    assert pid is not None
    return pid


def _wait_until(predicate, timeout_s: float = 30.0, message: str = "") -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for: {message or predicate}")


def _survivor_reference(base_rows: np.ndarray, dead_shards: "set[int]"):
    """An unsharded index over the surviving rows plus the id translation."""
    keep = [shard for shard in range(NUM_SHARDS) if shard not in dead_shards]
    parts = [base_rows[shard * ROWS_PER_SHARD:(shard + 1) * ROWS_PER_SHARD]
             for shard in keep]
    global_ids = np.concatenate(
        [np.arange(shard * ROWS_PER_SHARD, (shard + 1) * ROWS_PER_SHARD)
         for shard in keep])
    return _factory().build(np.concatenate(parts, axis=0)), global_ids


class TestHealthyIdentity:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_bit_identical_to_in_process_sharded(self, tmp_path, base_rows,
                                                 queries, num_shards):
        path = tmp_path / f"shards-{num_shards}"
        built = ShardedIndex.build(base_rows, path, num_shards=num_shards,
                                   index_factory=_factory)
        cluster = _launch(path)
        try:
            for k in (1, 5, 17):
                for query in queries:
                    local = built.knn(query, k=k)
                    remote = cluster.knn(query, k=k)
                    np.testing.assert_array_equal(remote.indices,
                                                  local.indices)
                    np.testing.assert_array_equal(remote.distances,
                                                  local.distances)
                    assert remote.stats.partial is False
                    assert remote.stats.coverage == 1.0
        finally:
            cluster.close()
            built.close()

    def test_batch_bit_identical(self, snapshot, base_rows, queries):
        built = ShardedIndex.load(snapshot)
        cluster = _launch(snapshot)
        try:
            local = built.knn_batch(queries, k=7)
            remote = cluster.knn_batch(queries, k=7)
            for expected, got in zip(local, remote):
                np.testing.assert_array_equal(got.indices, expected.indices)
                np.testing.assert_array_equal(got.distances,
                                              expected.distances)
        finally:
            cluster.close()
            built.close()

    def test_cluster_is_read_only(self, snapshot, base_rows):
        cluster = _launch(snapshot)
        try:
            with pytest.raises(ReadOnlyIndexError):
                cluster.insert(base_rows[0])
            with pytest.raises(ReadOnlyIndexError):
                cluster.delete(0)
            with pytest.raises(ReadOnlyIndexError):
                cluster.compact()
            with pytest.raises(ReadOnlyIndexError):
                cluster.save()
        finally:
            cluster.close()


class TestKill9:
    def test_degraded_answers_match_survivors_index(self, snapshot, base_rows,
                                                    queries):
        # Slow restarts + no auto-probe hold the degraded state steady so
        # the survivor comparison is deterministic.
        victim = 2
        cluster = _launch(
            snapshot, health=HealthPolicy(quarantine_after=2,
                                          auto_probe=False),
            policy=_fast_policy(restart_base_s=60.0, restart_cap_s=60.0))
        try:
            os.kill(_worker_pid(cluster, victim), signal.SIGKILL)

            def _charged() -> bool:
                # The health ladder is charged from the answer path, so the
                # board only learns about the death through queries.
                cluster.knn(queries[0], k=1, timeout_s=10.0)
                return cluster.shard_states()[victim] == "quarantined"

            _wait_until(_charged, message="victim quarantined")
            reference, global_ids = _survivor_reference(base_rows, {victim})
            for query in queries:
                result = cluster.knn(query, k=5, timeout_s=10.0)
                expected = reference.knn(query, k=5)
                np.testing.assert_array_equal(result.indices,
                                              global_ids[expected.indices])
                np.testing.assert_array_equal(result.distances,
                                              expected.distances)
                assert result.stats.partial is True
                assert result.stats.coverage == pytest.approx(
                    (NUM_SHARDS - 1) / NUM_SHARDS)
        finally:
            cluster.close()

    def test_kill9_mid_storm_yields_no_untyped_errors(self, snapshot,
                                                      queries):
        cluster = _launch(snapshot)
        errors: "list[BaseException]" = []
        answers: "list[bool]" = []
        stop = threading.Event()

        def storm(seed: int) -> None:
            while not stop.is_set():
                try:
                    result = cluster.knn(queries[seed % len(queries)], k=5,
                                         timeout_s=10.0)
                    answers.append(result.stats.partial)
                except Exception as error:  # noqa: BLE001 — collected below
                    errors.append(error)

        threads = [threading.Thread(target=storm, args=(i,), daemon=True)
                   for i in range(4)]
        try:
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            os.kill(_worker_pid(cluster, 1), signal.SIGKILL)
            time.sleep(1.5)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            # Untyped exceptions would break the serving contract; with
            # degraded="allow" and 3 of 4 shards alive, nothing raises at
            # all — the kill surfaces only as partial=True answers.
            untyped = [e for e in errors if not isinstance(e, ReproError)]
            assert untyped == [], untyped
            assert errors == [], [str(e) for e in errors]
            assert len(answers) > 0
        finally:
            stop.set()
            cluster.close()

    def test_supervisor_restarts_and_probe_readmits(self, snapshot, queries):
        victim = 0
        cluster = _launch(snapshot)
        try:
            os.kill(_worker_pid(cluster, victim), signal.SIGKILL)
            # Drive queries so the board learns about the death (the health
            # ladder is charged from the answer path).
            _wait_until(
                lambda: cluster.knn(queries[0], k=3,
                                    timeout_s=10.0).stats.partial,
                message="degraded answers after kill")
            # ... then full coverage again: restart + probe readmission.
            _wait_until(
                lambda: not cluster.knn(queries[0], k=3,
                                        timeout_s=10.0).stats.partial,
                message="coverage restored after restart")
            assert cluster.shard_states() == ["healthy"] * NUM_SHARDS
            report = cluster.supervisor.report()[victim]
            assert report["running"] is True
            # note_recovered reset the ladder on readmission.
            assert report["restarts"] == 0
            assert report["breaker_tripped"] is False
        finally:
            cluster.close()

    def test_sigterm_is_a_clean_exit_not_a_crash(self, snapshot, queries):
        victim = 3
        cluster = _launch(snapshot)
        try:
            first_pid = _worker_pid(cluster, victim)
            os.kill(first_pid, signal.SIGTERM)
            _wait_until(
                lambda: (cluster.supervisor.report()[victim]["pid"]
                         not in (None, first_pid)),
                message="worker respawned after SIGTERM")
            _wait_until(
                lambda: not cluster.knn(queries[0], k=3,
                                        timeout_s=10.0).stats.partial,
                message="coverage restored after SIGTERM restart")
            report = cluster.supervisor.report()[victim]
            # A deliberate stop charges neither the breaker nor the ladder.
            assert report["breaker_tripped"] is False
            assert report["restarts"] == 0
        finally:
            cluster.close()


class TestCrashLoop:
    def test_unstartable_worker_trips_breaker(self, tmp_path):
        trips: "list[int]" = []
        supervisor = ShardSupervisor(
            tmp_path, [tmp_path / "no-such-snapshot"],
            policy=_fast_policy(crash_loop_threshold=3,
                                crash_loop_window_s=30.0, cooloff_s=30.0),
            on_crash_loop=lambda shard, error: trips.append(shard))
        supervisor.start()
        try:
            deadline = time.monotonic() + 60.0
            while not trips and time.monotonic() < deadline:
                time.sleep(0.05)
            assert trips == [0]
            report = supervisor.report()[0]
            assert report["breaker_tripped"] is True
            # Three rapid crashes tripped it; half-open pacing (cooloff)
            # means no storm of further restarts piles up afterwards.
            assert report["restarts"] >= 3
        finally:
            supervisor.stop()
