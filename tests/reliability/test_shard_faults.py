"""Fault-tolerant scatter-gather: retries, quarantine, degraded bit-identity.

The fault contract under test (see :mod:`repro.index.sharded`):

* transient shard failures are retried with deterministic, deadline-bounded
  backoff; a shard that recovers within its retry budget leaves no trace in
  the answer;
* a shard that keeps failing (or is corrupt on load) trips the
  ``healthy → suspect → quarantined`` ladder and is skipped until a probe
  readmits it;
* with ``K`` of ``N`` shards down under ``degraded="allow"``, the answer is
  **bit-identical** to an index built over the surviving shards' rows alone,
  with ``coverage == (N-K)/N`` and ``partial=True``; ``degraded="forbid"``
  (and total failure) raise a typed
  :class:`~repro.core.errors.PartialResultError`;
* a hung shard cannot hang the query: the gather abandons it at the deadline
  plus a small grace;
* no failure mode lets an untyped exception or an unbounded wait escape.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    InvalidParameterError,
    PartialResultError,
    ReproError,
)
from repro.datasets.synthetic import random_walk
from repro.index.shard_health import (
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    HealthPolicy,
    RetryPolicy,
    ShardHealthBoard,
)
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

from fault_harness import FlakyShard, corruption_error

SERIES_LENGTH = 40
NUM_SHARDS = 4
ROWS_PER_SHARD = 30


def _factory():
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=10)


def _rows(count: int, seed: int) -> np.ndarray:
    return random_walk(count, SERIES_LENGTH, seed=seed)


@pytest.fixture(scope="module")
def base_rows() -> np.ndarray:
    return _rows(NUM_SHARDS * ROWS_PER_SHARD, seed=8801)


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return _rows(5, seed=8802)


@pytest.fixture()
def sharded(tmp_path, base_rows) -> ShardedIndex:
    """Four shards, deterministic health (no background probe), fast retries."""
    index = ShardedIndex.build(
        base_rows, tmp_path / "shards", num_shards=NUM_SHARDS,
        index_factory=_factory,
        retry=RetryPolicy(max_attempts=3, backoff_base_s=0.001,
                          backoff_cap_s=0.002),
        health=HealthPolicy(auto_probe=False))
    yield index
    index.close()


def _wrap_shard(index: ShardedIndex, shard: int, **faults) -> FlakyShard:
    """Install a :class:`FlakyShard` in front of one shard engine (loading
    it first — shards load lazily)."""
    engine = index._engine(index._shards[shard])
    flaky = FlakyShard(engine, **faults)
    index._shards[shard].engine = flaky
    return flaky


def _survivor_reference(base_rows: np.ndarray, dead_shards: "set[int]"):
    """An unsharded index over the surviving rows plus the id translation."""
    keep = [shard for shard in range(NUM_SHARDS) if shard not in dead_shards]
    parts = [base_rows[shard * ROWS_PER_SHARD:(shard + 1) * ROWS_PER_SHARD]
             for shard in keep]
    global_ids = np.concatenate(
        [np.arange(shard * ROWS_PER_SHARD, (shard + 1) * ROWS_PER_SHARD)
         for shard in keep])
    return _factory().build(np.concatenate(parts, axis=0)), global_ids


class TestTransientRetries:
    def test_fail_twice_then_succeed_leaves_no_trace(self, sharded, base_rows,
                                                     queries):
        flaky = _wrap_shard(sharded, 1, fail_times=2)
        reference = _factory().build(base_rows)
        for query in queries:
            result = sharded.knn(query, k=5)
            expected = reference.knn(query, k=5)
            np.testing.assert_array_equal(result.indices, expected.indices)
            np.testing.assert_array_equal(result.distances,
                                          expected.distances)
            assert result.stats.coverage == 1.0
            assert result.stats.partial is False
        # Two injected failures consumed two retry attempts, the third won.
        assert flaky.calls == len(queries) + 2
        assert sharded.shard_states()[1] == HEALTHY

    def test_retry_exhaustion_degrades_bit_identically(self, sharded,
                                                       base_rows, queries):
        """A shard failing past its retry budget is excluded; the answer is
        exactly what an index over the surviving shards' rows returns."""
        _wrap_shard(sharded, 2, fail_times=10_000)
        reference, global_ids = _survivor_reference(base_rows, {2})
        for query in queries:
            result = sharded.knn(query, k=6)
            expected = reference.knn(query, k=6)
            np.testing.assert_array_equal(result.indices,
                                          global_ids[expected.indices])
            np.testing.assert_array_equal(result.distances,
                                          expected.distances)
            assert result.stats.partial is True
            assert result.stats.shards_total == NUM_SHARDS
            assert result.stats.shards_answered == NUM_SHARDS - 1
            assert result.stats.coverage == pytest.approx(3 / 4)

    def test_knn_batch_degrades_bit_identically(self, sharded, base_rows,
                                                queries):
        _wrap_shard(sharded, 0, fail_times=10_000)
        reference, global_ids = _survivor_reference(base_rows, {0})
        expected = reference.knn_batch(queries, k=4, num_workers=1)
        observed = sharded.knn_batch(queries, k=4)
        for got, want in zip(observed, expected):
            np.testing.assert_array_equal(got.indices,
                                          global_ids[want.indices])
            np.testing.assert_array_equal(got.distances, want.distances)
            assert got.stats.partial is True

    def test_forbid_mode_raises_typed_partial_error(self, sharded, queries):
        _wrap_shard(sharded, 3, fail_times=10_000)
        with pytest.raises(PartialResultError) as excinfo:
            sharded.knn(queries[0], k=2, degraded="forbid")
        error = excinfo.value
        assert error.shards_total == NUM_SHARDS
        assert error.shards_answered == NUM_SHARDS - 1
        assert error.coverage == pytest.approx(3 / 4)
        assert len(error.failures) == 1
        # The allow-mode default still answers afterwards.
        assert sharded.knn(queries[0], k=2).stats.partial is True

    def test_total_failure_raises_even_under_allow(self, sharded, queries):
        for shard in range(NUM_SHARDS):
            _wrap_shard(sharded, shard, fail_times=10_000)
        with pytest.raises(PartialResultError, match="no shard"):
            sharded.knn(queries[0], k=1)

    def test_untyped_shard_exceptions_never_escape(self, sharded, queries):
        """Whatever a shard raises, the caller sees typed errors only."""
        _wrap_shard(sharded, 1, fail_times=10_000,
                    error_factory=lambda: ZeroDivisionError("boom"))
        try:
            sharded.knn(queries[0], k=3, degraded="forbid")
        except ReproError as error:
            assert isinstance(error, PartialResultError)
            ((shard, message),) = error.failures.items()
            assert shard == 1
            assert "ZeroDivisionError" in message
        else:  # pragma: no cover - the raise is the contract
            pytest.fail("expected a typed PartialResultError")
        # The degraded-allow path still answers (the shard is now skipped).
        result = sharded.knn(queries[0], k=3)
        assert result.stats.partial is True


class TestQuarantineAndReadmission:
    def test_transient_ladder_escalates_to_quarantine(self, sharded, queries):
        flaky = _wrap_shard(sharded, 2, fail_times=10_000)
        sharded.knn(queries[0], k=1)  # 3 failed attempts → quarantined
        assert sharded.shard_states()[2] == QUARANTINED
        calls_when_quarantined = flaky.calls
        sharded.knn(queries[1], k=1)  # quarantined shards are skipped
        assert flaky.calls == calls_when_quarantined
        report = sharded.health_report()
        assert report["status"] == "degraded"
        assert report["quarantined"] == 1
        assert report["shards"][2]["quarantine_trips"] == 1

    def test_injected_corruption_quarantines_immediately(self, sharded,
                                                         queries):
        flaky = _wrap_shard(sharded, 1, fail_times=10_000,
                            error_factory=corruption_error)
        sharded.knn(queries[0], k=1)
        assert sharded.shard_states()[1] == QUARANTINED
        assert flaky.calls == 1  # persistent failures never retry
        # The probe reloads the shard from its (healthy) on-disk snapshot —
        # dropping the fault wrapper — and readmits it.
        assert sharded.probe_shard(1) is True
        assert sharded.shard_states()[1] == HEALTHY
        result = sharded.knn(queries[0], k=4)
        assert result.stats.coverage == 1.0

    def test_on_disk_corruption_repair_and_readmit(self, tmp_path, base_rows,
                                                   queries):
        """The full lifecycle: corrupt payload bytes → quarantine → repair →
        probe → readmit → answers bit-identical to the pre-fault index."""
        index = ShardedIndex.build(
            base_rows, tmp_path / "shards", num_shards=NUM_SHARDS,
            index_factory=_factory,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.001),
            health=HealthPolicy(auto_probe=False))
        try:
            before = index.knn(queries[0], k=5)
            victim_dir = index._shards[2].path
            index._shards[2].engine.close()
            index._shards[2].engine = None  # force the next query to reload
            (victim,) = sorted(victim_dir.glob("*.npy"))[:1]
            pristine = victim.read_bytes()
            victim.write_bytes(pristine[:64] + b"\xff" * 32 + pristine[96:])

            degraded = index.knn(queries[0], k=5)
            assert degraded.stats.partial is True
            assert index.shard_states()[2] == QUARANTINED
            assert index.probe_shard(2) is False  # still broken on disk

            victim.write_bytes(pristine)  # the repair
            assert index.probe_shard(2) is True
            assert index.shard_states()[2] == HEALTHY
            after = index.knn(queries[0], k=5)
            np.testing.assert_array_equal(after.indices, before.indices)
            np.testing.assert_array_equal(after.distances, before.distances)
        finally:
            index.close()

    def test_readmitted_shard_counts_in_health_report(self, sharded, queries):
        _wrap_shard(sharded, 0, fail_times=10_000,
                    error_factory=corruption_error)
        sharded.knn(queries[0], k=1)
        assert sharded.probe_shard(0) is True
        report = sharded.health_report()
        assert report["status"] == "ok"
        assert report["shards"][0]["readmits"] == 1
        assert report["shards"][0]["quarantine_trips"] == 1


class TestHungShards:
    def test_hung_shard_cannot_hang_the_query(self, tmp_path, base_rows,
                                              queries):
        hang_s = 3.0
        index = ShardedIndex.build(
            base_rows, tmp_path / "shards", num_shards=NUM_SHARDS,
            index_factory=_factory,
            retry=RetryPolicy(max_attempts=1),
            health=HealthPolicy(auto_probe=False),
            gather_grace_s=0.2)
        try:
            index.knn(queries[0], k=1)  # load every shard engine
            _wrap_shard(index, 3, hang_s=hang_s)
            started = time.monotonic()
            result = index.knn(queries[0], k=3, timeout_s=0.2)
            elapsed = time.monotonic() - started
            assert elapsed < hang_s / 2, (
                f"query took {elapsed:.2f}s — it waited for the hung shard")
            assert result.stats.partial is True
            assert result.stats.shards_answered == NUM_SHARDS - 1
            # The abandoned shard was charged a (transient) failure.
            assert index.shard_states()[3] in (SUSPECT, QUARANTINED)
        finally:
            index.close()


class TestRetryPolicyProperties:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**16), shard=st.integers(0, 64),
           attempt=st.integers(0, 8),
           limit=st.one_of(st.none(), st.floats(0.0, 0.5)))
    def test_backoff_is_deterministic_and_bounded(self, seed, shard, attempt,
                                                  limit):
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.004,
                             backoff_cap_s=0.05, jitter=0.5, seed=seed)
        first = policy.backoff_s(attempt, shard, limit=limit)
        second = policy.backoff_s(attempt, shard, limit=limit)
        assert first == second, "same (seed, shard, attempt) must be equal"
        assert first >= 0.0
        # Never above the exponential cap with full jitter...
        assert first <= policy.backoff_cap_s * (1.0 + policy.jitter) + 1e-12
        # ...and never above the remaining deadline slice.
        if limit is not None:
            assert first <= max(0.0, limit) + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(attempt=st.integers(0, 6), shard=st.integers(0, 16))
    def test_backoff_grows_no_faster_than_the_cap(self, attempt, shard):
        policy = RetryPolicy(backoff_base_s=0.002, backoff_cap_s=0.016,
                             jitter=0.25, seed=11)
        exponential = min(policy.backoff_cap_s,
                          policy.backoff_base_s * 2.0 ** attempt)
        delay = policy.backoff_s(attempt, shard)
        assert exponential <= delay <= exponential * (1.0 + policy.jitter)

    def test_policy_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=-0.5)
        with pytest.raises(InvalidParameterError):
            HealthPolicy(suspect_after=3, quarantine_after=2)

    def test_health_board_ladder(self):
        board = ShardHealthBoard(2, HealthPolicy(suspect_after=1,
                                                 quarantine_after=3,
                                                 auto_probe=False))
        error = RuntimeError("x")
        assert board.record_transient(0, error) == SUSPECT
        assert board.record_transient(0, error) == SUSPECT
        assert board.record_transient(0, error) == QUARANTINED
        assert board.state(1) == HEALTHY  # isolation between shards
        board.record_success(0)
        assert board.state(0) == HEALTHY
        assert board.report()[0]["readmits"] == 1
