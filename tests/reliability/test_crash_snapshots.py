"""Crash sweeps and corruption detection for the snapshot commit protocols.

Every test here drives a *real* save through the fsio fault-injection seam
(see ``conftest.py``) and asserts the storage contract from
:mod:`repro.index.persistence`:

* a crash at **any** durable-effect boundary of a fresh save leaves either no
  snapshot or the complete one;
* a crash at any boundary of an in-place re-save leaves the **old or the new
  complete state** — never a torn mix — and a retry converges on the new one;
* a flipped bit, a truncated payload or a missing file is *detected* as a
  typed error naming the offending file, never a silently wrong answer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import CorruptionError, IndexError_
from repro.index.dynamic import DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.persistence import (
    MANIFEST_NAME,
    load_dynamic,
    load_index,
    load_tree,
    read_manifest,
)

from fault_harness import SimulatedCrash


def _build_index(rows: np.ndarray) -> MessiIndex:
    return MessiIndex(word_length=8, alphabet_size=16, leaf_size=8).build(rows)


def _signature(index, queries: np.ndarray):
    """A comparable fingerprint of an index's serving state."""
    results = index.knn_batch(queries, k=2)
    return [(result.indices.tolist(),
             result.distances.tolist()) for result in results]


def _dynamic_signature(dynamic: DynamicIndex, queries: np.ndarray):
    base = _signature(dynamic, queries)
    return (dynamic.num_base, dynamic.delta_count, dynamic.num_surviving, base)


class TestFreshSaveCrashSweep:
    def test_every_crash_point_leaves_none_or_complete(self, injector,
                                                       small_rows, tmp_path):
        index = _build_index(small_rows[:32])
        queries = small_rows[32:34]
        expected = _signature(index, queries)

        num_ops = injector.count_ops(
            lambda: index.save(tmp_path / "enumerate"))
        assert num_ops > 5  # the protocol really is multi-step

        for point in range(num_ops):
            target = tmp_path / f"crash-{point}"
            with pytest.raises(SimulatedCrash):
                injector.crash_at(point, lambda: index.save(target))
            # Old-or-new with no previous snapshot: either nothing loadable
            # (typed refusal, not a numpy/OS error) or the complete snapshot.
            try:
                loaded = load_index(target, verify="eager")
            except IndexError_:
                pass
            else:
                assert _signature(loaded, queries) == expected
            # A retry after the crash must converge on the complete snapshot
            # (stale staging directories may not wedge the target).
            index.save(target)
            assert _signature(load_index(target, verify="eager"),
                              queries) == expected

    def test_refuses_to_overwrite_non_snapshot_directory(self, small_rows,
                                                         tmp_path):
        index = _build_index(small_rows[:32])
        target = tmp_path / "not-a-snapshot"
        target.mkdir()
        (target / "precious.txt").write_text("user data")
        with pytest.raises(IndexError_, match="refus"):
            index.save(target)
        assert (target / "precious.txt").read_text() == "user data"


class TestInPlaceResaveCrashSweep:
    def test_old_or_new_never_torn(self, injector, small_rows, tmp_path):
        base = small_rows[:24]
        extra = small_rows[24:30]
        queries = small_rows[30:32]

        def make_states():
            dynamic = _build_index(base).dynamic()
            old_signature = _dynamic_signature(dynamic, queries)
            return dynamic, old_signature

        # Enumerate the effects of the second (in-place) save.
        dynamic, _ = make_states()
        probe = tmp_path / "enumerate"
        dynamic.save(probe)
        dynamic.insert_batch(extra)
        dynamic.delete(0)
        new_signature = _dynamic_signature(dynamic, queries)
        num_ops = injector.count_ops(lambda: dynamic.save(probe))
        assert num_ops > 5

        for point in range(num_ops):
            target = tmp_path / f"crash-{point}"
            dynamic, old_signature = make_states()
            dynamic.save(target)
            dynamic.insert_batch(extra)
            dynamic.delete(0)
            with pytest.raises(SimulatedCrash):
                injector.crash_at(point, lambda: dynamic.save(target))
            loaded = load_dynamic(target, verify="eager")
            observed = _dynamic_signature(loaded, queries)
            assert observed in (old_signature, new_signature), (
                f"crash point {point} left a state that is neither the old "
                "nor the new snapshot"
            )
            # Retrying the save converges on the new state.
            dynamic.save(target)
            assert _dynamic_signature(load_dynamic(target, verify="eager"),
                                      queries) == new_signature

    def test_commit_point_is_the_manifest_rename(self, injector, small_rows,
                                                 tmp_path):
        """Before the manifest rename the old state loads; after it, the new."""
        target = tmp_path / "snap"
        dynamic = _build_index(small_rows[:24]).dynamic()
        queries = small_rows[30:32]
        dynamic.save(target)
        old_signature = _dynamic_signature(dynamic, queries)
        dynamic.insert_batch(small_rows[24:28])
        new_signature = _dynamic_signature(dynamic, queries)

        injector.count_ops(lambda: dynamic.save(target))
        renames = [position for position, (operation, path)
                   in enumerate(injector.trace)
                   if operation == "rename" and path.endswith(MANIFEST_NAME)]
        assert len(renames) == 1
        commit = renames[0]

        # Crash immediately before the rename: still the old state.
        dynamic, queries_local = _build_index(small_rows[:24]).dynamic(), queries
        target_before = tmp_path / "before"
        dynamic.save(target_before)
        dynamic.insert_batch(small_rows[24:28])
        with pytest.raises(SimulatedCrash):
            injector.crash_at(commit, lambda: dynamic.save(target_before))
        assert _dynamic_signature(load_dynamic(target_before, verify="eager"),
                                  queries_local) == old_signature
        # Crash immediately after the rename: durably the new state.
        dynamic = _build_index(small_rows[:24]).dynamic()
        target_after = tmp_path / "after"
        dynamic.save(target_after)
        dynamic.insert_batch(small_rows[24:28])
        with pytest.raises(SimulatedCrash):
            injector.crash_at(commit + 1, lambda: dynamic.save(target_after))
        assert _dynamic_signature(load_dynamic(target_after, verify="eager"),
                                  queries_local) == new_signature


class TestCorruptionDetection:
    @pytest.fixture()
    def snapshot(self, small_rows, tmp_path):
        index = _build_index(small_rows[:32])
        target = tmp_path / "snap"
        index.save(target)
        return target

    def test_bit_flip_in_every_payload_is_detected(self, snapshot):
        manifest = read_manifest(snapshot)
        for name, filename in sorted(manifest["files"].items()):
            payload_path = snapshot / filename
            original = payload_path.read_bytes()
            # Flip one bit in the middle of the array data.
            position = len(original) // 2
            corrupted = bytearray(original)
            corrupted[position] ^= 0x40
            payload_path.write_bytes(bytes(corrupted))
            try:
                with pytest.raises(CorruptionError, match=filename):
                    load_tree(snapshot, verify="eager")
            finally:
                payload_path.write_bytes(original)
        # Restored intact, the snapshot loads again.
        load_tree(snapshot, verify="eager")

    def test_manifest_corruption_is_detected(self, snapshot):
        manifest_path = snapshot / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["tree"]["leaf_size"] = 9999  # edited without re-stamping
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CorruptionError, match="checksum"):
            load_tree(snapshot)

    def test_missing_payload_names_the_file(self, snapshot):
        manifest = read_manifest(snapshot)
        filename = manifest["files"]["values"]
        (snapshot / filename).unlink()
        with pytest.raises(IndexError_, match=filename):
            load_tree(snapshot)

    def test_truncated_payload_names_the_file(self, snapshot):
        manifest = read_manifest(snapshot)
        filename = manifest["files"]["values"]
        payload_path = snapshot / filename
        payload_path.write_bytes(payload_path.read_bytes()[:40])
        with pytest.raises((CorruptionError, IndexError_), match=filename):
            load_tree(snapshot, verify="eager")
        # Even with verification off, a truncated .npy must fail typed.
        with pytest.raises((CorruptionError, IndexError_), match=filename):
            load_tree(snapshot, verify="off")

    def test_lazy_skips_mmapped_payloads_but_eager_checks(self, snapshot):
        """The verify knob trades load cost against coverage as documented."""
        manifest = read_manifest(snapshot)
        filename = manifest["files"]["values"]
        payload_path = snapshot / filename
        original = payload_path.read_bytes()
        corrupted = bytearray(original)
        corrupted[len(corrupted) // 2] ^= 0x01
        payload_path.write_bytes(bytes(corrupted))
        # values is mmapped: lazy does not read (and so not verify) its bytes.
        load_tree(snapshot, verify="lazy")
        with pytest.raises(CorruptionError, match=filename):
            load_tree(snapshot, verify="eager")
