"""End-to-end integration tests across the whole pipeline.

These tests exercise the full paper workflow — generate a benchmark dataset,
build every competitor, answer exact queries, evaluate TLB, and run the
critical-difference analysis — on deliberately small inputs.
"""

import numpy as np
import pytest

from repro import (
    FlatL2Index,
    MessiIndex,
    SerialScan,
    SofaIndex,
    UcrSuiteScan,
    WorkloadRunner,
    critical_difference,
    dataset_names,
    generate_ucr_like_suite,
    load_dataset,
    split_queries,
    tlb_study,
)
from repro.evaluation.tlb import mean_tlb_table
from repro.index.stats import compute_structure_stats


class TestFullQueryPipeline:
    """The Table II workflow at miniature scale: every method, exact answers."""

    @pytest.fixture(scope="class")
    def workload(self):
        dataset = load_dataset("SCEDC", num_series=1500, seed=3)
        return split_queries(dataset, num_queries=12)

    def test_all_methods_agree_with_brute_force(self, workload):
        index_set, queries = workload
        scan = SerialScan().build(index_set)
        sofa = SofaIndex(leaf_size=60).build(index_set)
        messi = MessiIndex(leaf_size=60).build(index_set)
        ucr = UcrSuiteScan(num_chunks=4).build(index_set)
        flat = FlatL2Index(batch_size=4).build(index_set)
        for query in queries.values:
            _, expected = scan.nearest_neighbor(query)
            assert sofa.nearest_neighbor(query).nearest_distance == pytest.approx(expected)
            assert messi.nearest_neighbor(query).nearest_distance == pytest.approx(expected)
            assert ucr.nearest_neighbor(query).distances[0] == pytest.approx(expected)
            assert flat.nearest_neighbor(query)[1] == pytest.approx(expected)

    def test_knn_consistency_across_k(self, workload):
        """Growing k only appends neighbours; the prefix stays identical."""
        index_set, queries = workload
        sofa = SofaIndex(leaf_size=60).build(index_set)
        query = queries[0]
        previous = sofa.knn(query, k=1).distances
        for k in (3, 5, 10):
            current = sofa.knn(query, k=k).distances
            assert np.allclose(current[:previous.shape[0]], previous)
            previous = current

    def test_workload_runner_reproduces_method_ordering(self, workload):
        """On a high-frequency dataset SOFA should do less work than MESSI,
        and both tree indexes less than the full scan."""
        index_set, queries = workload
        runner = WorkloadRunner(core_counts=(18,), leaf_size=100)
        result = runner.run_dataset(index_set, queries)
        sofa_time = result.query_record(index_set.name, "SOFA", 18).mean_time
        messi_time = result.query_record(index_set.name, "MESSI", 18).mean_time
        ucr_time = result.query_record(index_set.name, "UCR-SUITE", 18).mean_time
        assert sofa_time < messi_time
        assert sofa_time < ucr_time


class TestStructuralComparison:
    def test_index_structures_on_multiple_datasets(self):
        """Figure 8 workflow: structure statistics exist and are sane on
        datasets from different families."""
        for name in ("LenDB", "SALD"):
            dataset = load_dataset(name, num_series=300, seed=1)
            sofa = SofaIndex(leaf_size=40).build(dataset)
            messi = MessiIndex(leaf_size=40).build(dataset)
            for index in (sofa, messi):
                stats = compute_structure_stats(index.tree)
                assert stats.num_series == 300
                assert stats.num_leaves >= 1
                assert stats.average_depth >= 1.0


class TestAblationPipeline:
    def test_tlb_study_and_critical_difference(self):
        """Figure 14/15 workflow on a 4-dataset UCR-like suite."""
        suite = generate_ucr_like_suite(num_datasets=4, train_size=60, test_size=10)
        datasets = {entry.name: (entry.train, entry.test) for entry in suite}
        records = tlb_study(datasets, alphabet_sizes=(16,),
                            methods=("iSAX", "SFA EW +VAR", "SFA ED +VAR"),
                            word_length=8, max_pairs_per_query=30)
        table = mean_tlb_table(records)
        assert set(table) == {"iSAX", "SFA EW +VAR", "SFA ED +VAR"}

        scores = {}
        for record in records:
            scores.setdefault(record.method, []).append(record.tlb)
        result = critical_difference(scores)
        assert set(result.average_ranks) == set(scores)
        assert 0.0 <= result.friedman_pvalue <= 1.0


class TestRegistryCoverage:
    @pytest.mark.parametrize("name", dataset_names())
    def test_every_registered_dataset_supports_exact_search(self, name):
        """Smoke test: each of the 17 datasets builds a SOFA index that returns
        the exact nearest neighbour."""
        dataset = load_dataset(name, num_series=150, seed=7)
        index_set, queries = split_queries(dataset, num_queries=3)
        sofa = SofaIndex(leaf_size=30).build(index_set)
        scan = SerialScan().build(index_set)
        for query in queries.values:
            _, expected = scan.nearest_neighbor(query)
            assert sofa.nearest_neighbor(query).nearest_distance == pytest.approx(
                expected, abs=1e-8)
