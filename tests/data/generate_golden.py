"""Regenerate the golden index snapshot fixture.

Run from the repository root:

    PYTHONPATH=src python tests/data/generate_golden.py

The fixture pins the on-disk snapshot format: ``golden-messi-v1/`` is a
format-version-1 snapshot of a small MESSI index over deterministic
random-walk data, and ``golden-messi-v1.expected.json`` records the queries
and the exact k-NN answers the snapshot must keep producing.  MESSI (SAX with
Gaussian breakpoints) is used because its build involves no FFT or sampling,
so the checked-in arrays are reproducible bit-for-bit.

Only regenerate the fixture when the snapshot format version is bumped — the
whole point of the golden files is that older snapshots keep loading.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import random_walk
from repro.index.messi import MessiIndex

DATA_DIR = Path(__file__).parent
SNAPSHOT_DIR = DATA_DIR / "golden-messi-v1"
EXPECTED_PATH = DATA_DIR / "golden-messi-v1.expected.json"

NUM_SERIES = 24
SERIES_LENGTH = 32
NUM_QUERIES = 4
K_VALUES = (1, 3, 5)


def main() -> None:
    data = random_walk(NUM_SERIES, SERIES_LENGTH, seed=20240214)
    queries = random_walk(NUM_QUERIES, SERIES_LENGTH, seed=20240215)
    index = MessiIndex(word_length=8, alphabet_size=16, leaf_size=5).build(data)

    if SNAPSHOT_DIR.exists():
        shutil.rmtree(SNAPSHOT_DIR)
    index.save(SNAPSHOT_DIR)

    # The fixture pins the *version-1* layout.  Static snapshots kept the v1
    # array layout when format v2 added the (optional) dynamic payload, so
    # re-stamping the manifest keeps the fixture an honest v1 snapshot; if a
    # future format change breaks this assumption, cut a new golden-*-vN
    # fixture instead of regenerating this one.
    manifest_path = SNAPSHOT_DIR / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 1
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")

    expected = {"queries": queries.tolist(), "answers": {}}
    for k in K_VALUES:
        expected["answers"][str(k)] = [
            {
                "indices": result.indices.tolist(),
                "distances": result.distances.tolist(),
            }
            for result in (index.knn(query, k=k) for query in queries)
        ]
    with open(EXPECTED_PATH, "w", encoding="utf-8") as handle:
        json.dump(expected, handle, indent=2)
        handle.write("\n")
    print(f"wrote {SNAPSHOT_DIR} and {EXPECTED_PATH}")


if __name__ == "__main__":
    main()
