"""Regenerate the golden index snapshot fixture.

Run from the repository root:

    PYTHONPATH=src python tests/data/generate_golden.py

The fixtures pin the on-disk snapshot formats that the current reader must
keep accepting:

* ``golden-messi-v1/`` is a format-version-1 snapshot of a small MESSI index
  over deterministic random-walk data;
* ``golden-dynamic-v2/`` is a format-version-2 *dynamic* snapshot saved
  mid-ingest, with a pending delta buffer and tombstones in both the base
  and the delta;
* the matching ``*.expected.json`` files record the queries and the exact
  k-NN answers each snapshot must keep producing.

MESSI (SAX with Gaussian breakpoints) is used because its build involves no
FFT or sampling, so the checked-in arrays are reproducible bit-for-bit.

Only regenerate the fixtures when the snapshot format version is bumped — the
whole point of the golden files is that older snapshots keep loading.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import random_walk
from repro.index.messi import MessiIndex

DATA_DIR = Path(__file__).parent
SNAPSHOT_DIR = DATA_DIR / "golden-messi-v1"
EXPECTED_PATH = DATA_DIR / "golden-messi-v1.expected.json"
DYNAMIC_SNAPSHOT_DIR = DATA_DIR / "golden-dynamic-v2"
DYNAMIC_EXPECTED_PATH = DATA_DIR / "golden-dynamic-v2.expected.json"

NUM_SERIES = 24
SERIES_LENGTH = 32
NUM_QUERIES = 4
K_VALUES = (1, 3, 5)

#: Keys format v3 (crash-safe storage) added to the manifest.  Stripping
#: them — plus re-stamping ``version`` — turns a fresh v3 save (whose payload
#: files carry plain un-suffixed names) into an honest older-format snapshot.
V3_ONLY_KEYS = ("generation", "files", "checksums", "manifest_checksum", "wal")


def _downgrade_manifest(snapshot_dir: Path, version: int) -> None:
    manifest_path = snapshot_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = version
    for key in V3_ONLY_KEYS:
        manifest.pop(key, None)
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def _record_answers(index, queries: np.ndarray, expected_path: Path) -> None:
    expected = {"queries": queries.tolist(), "answers": {}}
    for k in K_VALUES:
        expected["answers"][str(k)] = [
            {
                "indices": result.indices.tolist(),
                "distances": result.distances.tolist(),
            }
            for result in (index.knn(query, k=k) for query in queries)
        ]
    with open(expected_path, "w", encoding="utf-8") as handle:
        json.dump(expected, handle, indent=2)
        handle.write("\n")


def generate_static_v1() -> None:
    data = random_walk(NUM_SERIES, SERIES_LENGTH, seed=20240214)
    queries = random_walk(NUM_QUERIES, SERIES_LENGTH, seed=20240215)
    index = MessiIndex(word_length=8, alphabet_size=16, leaf_size=5).build(data)

    if SNAPSHOT_DIR.exists():
        shutil.rmtree(SNAPSHOT_DIR)
    index.save(SNAPSHOT_DIR)

    # The fixture pins the *version-1* layout.  Static snapshots kept the v1
    # array layout through formats v2 and v3, so downgrading the manifest
    # keeps the fixture an honest v1 snapshot; if a future format change
    # breaks this assumption, cut a new golden-*-vN fixture instead of
    # regenerating this one.
    _downgrade_manifest(SNAPSHOT_DIR, version=1)
    _record_answers(index, queries, EXPECTED_PATH)
    print(f"wrote {SNAPSHOT_DIR} and {EXPECTED_PATH}")


def generate_dynamic_v2() -> None:
    base = random_walk(NUM_SERIES, SERIES_LENGTH, seed=20250214)
    extra = random_walk(6, SERIES_LENGTH, seed=20250215)
    queries = random_walk(NUM_QUERIES, SERIES_LENGTH, seed=20250216)
    dynamic = MessiIndex(word_length=8, alphabet_size=16,
                         leaf_size=5).build(base).dynamic()
    dynamic.insert_batch(extra)
    dynamic.delete(2)                   # base tombstone
    dynamic.delete(NUM_SERIES + 1)      # delta tombstone

    if DYNAMIC_SNAPSHOT_DIR.exists():
        shutil.rmtree(DYNAMIC_SNAPSHOT_DIR)
    dynamic.save(DYNAMIC_SNAPSHOT_DIR)

    # A v2 dynamic snapshot is a v3 one minus the crash-safety metadata: a
    # fresh save writes every payload under its plain (un-suffixed) name,
    # which is exactly what the v2 reader's filename fallback expects.
    _downgrade_manifest(DYNAMIC_SNAPSHOT_DIR, version=2)
    _record_answers(dynamic, queries, DYNAMIC_EXPECTED_PATH)
    print(f"wrote {DYNAMIC_SNAPSHOT_DIR} and {DYNAMIC_EXPECTED_PATH}")


if __name__ == "__main__":
    generate_static_v1()
    generate_dynamic_v2()
