"""Tests for the 17-dataset registry, the UCR-like suite and query generation."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.datasets.queries import perturbed_queries, split_queries
from repro.datasets.registry import (
    DATASET_SPECS,
    dataset_names,
    get_spec,
    high_frequency_names,
    load_benchmark_suite,
    load_dataset,
)
from repro.datasets.ucr import generate_ucr_like_suite


class TestRegistry:
    def test_seventeen_datasets(self):
        assert len(DATASET_SPECS) == 17
        assert len(dataset_names()) == 17

    def test_names_match_table_one(self):
        names = set(dataset_names())
        assert {"Astro", "BigANN", "Deep1b", "ETHZ", "Iquique", "LenDB", "NEIC",
                "OBS", "OBST2024", "PNW", "SALD", "SCEDC", "SIFT1b", "STEAD",
                "TXED", "Meier2019JGR", "ISC_EHB_DepthPhases"} == names

    def test_series_lengths_match_table_one(self):
        lengths = {spec.name: spec.series_length for spec in DATASET_SPECS}
        assert lengths["SIFT1b"] == 128
        assert lengths["BigANN"] == 100
        assert lengths["Deep1b"] == 96
        assert lengths["SALD"] == 128
        assert lengths["LenDB"] == 256
        assert lengths["SCEDC"] == 256

    def test_paper_counts_total_about_one_billion(self):
        total = sum(spec.paper_num_series for spec in DATASET_SPECS)
        assert total == pytest.approx(1_017_586_504, rel=0.01)

    def test_lookup_is_case_insensitive(self):
        assert get_spec("lendb").name == "LenDB"

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            get_spec("NotADataset")

    def test_high_frequency_flags(self):
        high = set(high_frequency_names())
        assert "LenDB" in high
        assert "SCEDC" in high
        assert "SALD" not in high
        assert "Astro" not in high

    def test_load_dataset_is_normalized_and_sized(self):
        dataset = load_dataset("ETHZ", num_series=150, seed=1)
        assert dataset.num_series == 150
        assert dataset.series_length == 256
        assert abs(dataset.values[0].mean()) < 1e-6

    def test_load_dataset_deterministic(self):
        first = load_dataset("OBS", num_series=100, seed=5)
        second = load_dataset("OBS", num_series=100, seed=5)
        assert np.allclose(first.values, second.values)

    def test_unclustered_generation(self):
        spec = get_spec("LenDB")
        dataset = spec.generate(num_series=100, clustered_data=False)
        assert dataset.num_series == 100

    def test_load_benchmark_suite_subset(self):
        suite = load_benchmark_suite(num_series=60, names=["LenDB", "SALD"])
        assert set(suite) == {"LenDB", "SALD"}
        assert all(dataset.num_series == 60 for dataset in suite.values())

    def test_metadata_is_attached(self):
        dataset = load_dataset("SIFT1b", num_series=50)
        assert dataset.metadata["domain"] == "vectors"
        assert dataset.metadata["high_frequency"] is True


class TestUcrLikeSuite:
    def test_suite_size_and_splits(self):
        suite = generate_ucr_like_suite(num_datasets=6, train_size=40, test_size=10)
        assert len(suite) == 6
        for entry in suite:
            assert entry.train.num_series == 40
            assert entry.test.num_series == 10
            assert entry.train.series_length == entry.test.series_length

    def test_full_suite_is_diverse(self):
        suite = generate_ucr_like_suite(train_size=20, test_size=5)
        assert len(suite) >= 30
        lengths = {entry.train.series_length for entry in suite}
        assert len(lengths) >= 4

    def test_names_are_unique(self):
        suite = generate_ucr_like_suite(train_size=20, test_size=5)
        names = [entry.name for entry in suite]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        first = generate_ucr_like_suite(num_datasets=3, train_size=10, test_size=5, seed=7)
        second = generate_ucr_like_suite(num_datasets=3, train_size=10, test_size=5, seed=7)
        for a, b in zip(first, second):
            assert np.allclose(a.train.values, b.train.values)


class TestQueries:
    def test_split_queries_sizes(self):
        dataset = load_dataset("TXED", num_series=200)
        index_set, queries = split_queries(dataset, num_queries=25)
        assert queries.num_series == 25
        assert index_set.num_series == 175

    def test_perturbed_queries_have_known_neighbours(self):
        dataset = load_dataset("PNW", num_series=300, seed=2)
        queries, sources = perturbed_queries(dataset, num_queries=15, noise_level=0.05)
        assert queries.num_series == 15
        assert sources.shape == (15,)
        from repro.baselines.serial_scan import SerialScan

        scan = SerialScan().build(dataset)
        hits = sum(1 for row, query in zip(sources, queries.values)
                   if scan.nearest_neighbor(query)[0] == row)
        assert hits >= 12  # low noise: the source row is almost always the 1-NN

    def test_perturbed_queries_validation(self):
        dataset = load_dataset("PNW", num_series=50)
        with pytest.raises(DatasetError):
            perturbed_queries(dataset, num_queries=0)
        with pytest.raises(DatasetError):
            perturbed_queries(dataset, noise_level=-0.1)
