"""Tests for the synthetic signal generators."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets.synthetic import (
    GENERATORS,
    clustered,
    embedding_vectors,
    mixed_frequency,
    oscillatory,
    random_walk,
    red_noise,
    seismic_events,
    smooth_signal,
)


def _spectral_centroid(matrix: np.ndarray) -> float:
    """Mean frequency (fraction of Nyquist) weighted by spectral power."""
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    spectrum = np.abs(np.fft.rfft(centered, axis=1)) ** 2
    frequencies = np.linspace(0, 1, spectrum.shape[1])
    weights = spectrum.sum(axis=0)
    return float(np.sum(frequencies * weights) / weights.sum())


class TestBasicProperties:
    @pytest.mark.parametrize("generator", [random_walk, smooth_signal, red_noise,
                                           seismic_events, oscillatory,
                                           embedding_vectors, mixed_frequency])
    def test_shape_and_finiteness(self, generator):
        values = generator(20, 64, seed=0)
        assert values.shape == (20, 64)
        assert np.isfinite(values).all()

    @pytest.mark.parametrize("generator", [random_walk, smooth_signal, red_noise,
                                           seismic_events, oscillatory,
                                           embedding_vectors, mixed_frequency])
    def test_deterministic_given_seed(self, generator):
        assert np.allclose(generator(5, 32, seed=42), generator(5, 32, seed=42))

    @pytest.mark.parametrize("generator", [random_walk, oscillatory, seismic_events])
    def test_different_seeds_differ(self, generator):
        assert not np.allclose(generator(5, 32, seed=1), generator(5, 32, seed=2))

    def test_invalid_shapes_raise(self):
        with pytest.raises(InvalidParameterError):
            random_walk(0, 64)
        with pytest.raises(InvalidParameterError):
            random_walk(5, 4)

    def test_generators_registry_is_complete(self):
        assert set(GENERATORS) == {"random-walk", "smooth", "red-noise", "seismic",
                                   "oscillatory", "embedding", "mixed"}


class TestSpectralCharacter:
    def test_oscillatory_has_higher_frequency_content_than_smooth(self):
        high = oscillatory(50, 256, seed=0)
        low = smooth_signal(50, 256, seed=0)
        assert _spectral_centroid(high) > _spectral_centroid(low)

    def test_random_walk_is_low_frequency(self):
        walk = random_walk(50, 256, seed=0)
        assert _spectral_centroid(walk) < 0.1

    def test_mixed_frequency_knob_is_monotone(self):
        low = mixed_frequency(50, 256, high_energy_fraction=0.1, seed=0)
        high = mixed_frequency(50, 256, high_energy_fraction=0.9, seed=0)
        assert _spectral_centroid(high) > _spectral_centroid(low)

    def test_red_noise_exponent_controls_smoothness(self):
        rough = red_noise(50, 256, exponent=0.5, seed=0)
        smooth = red_noise(50, 256, exponent=2.5, seed=0)
        assert _spectral_centroid(smooth) < _spectral_centroid(rough)

    def test_seismic_dominant_frequency_shifts_spectrum(self):
        low = seismic_events(50, 256, dominant_frequency=0.03, seed=0)
        high = seismic_events(50, 256, dominant_frequency=0.2, seed=0)
        assert _spectral_centroid(high) > _spectral_centroid(low)


class TestEmbeddingVectors:
    def test_non_negative_option(self):
        values = embedding_vectors(30, 64, non_negative=True, seed=0)
        assert values.min() >= 0.0

    def test_sparsity_creates_zeros(self):
        values = embedding_vectors(30, 64, sparsity=0.5, seed=0)
        assert np.mean(values == 0.0) > 0.3

    def test_invalid_sparsity(self):
        with pytest.raises(InvalidParameterError):
            embedding_vectors(5, 16, sparsity=1.5)


class TestClustered:
    def test_shape(self):
        values = clustered(random_walk, 100, 64, num_clusters=10, seed=0)
        assert values.shape == (100, 64)

    def test_within_cluster_distances_smaller_than_between(self):
        values = clustered(oscillatory, 200, 128, num_clusters=5,
                           within_cluster_noise=0.1, seed=0)
        from repro.core.distance import pairwise_squared_euclidean
        from repro.core.normalization import znormalize_batch

        normalized = znormalize_batch(values)
        distances = np.sqrt(pairwise_squared_euclidean(normalized[:20], normalized))
        np.fill_diagonal(distances[:, :20], np.inf)
        nearest = distances.min(axis=1)
        median_pairwise = np.median(distances[np.isfinite(distances)])
        assert np.median(nearest) < 0.5 * median_pairwise

    def test_more_clusters_than_series_is_capped(self):
        values = clustered(random_walk, 5, 32, num_clusters=50, seed=0)
        assert values.shape == (5, 32)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            clustered(random_walk, 10, 32, num_clusters=0)
        with pytest.raises(InvalidParameterError):
            clustered(random_walk, 10, 32, within_cluster_noise=-1.0)

    def test_deterministic(self):
        first = clustered(seismic_events, 30, 64, seed=3)
        second = clustered(seismic_events, 30, 64, seed=3)
        assert np.allclose(first, second)
