"""Tests for the worker pool and the virtual-core simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.parallel.pool import (
    NUM_WORKERS_ENV,
    BackgroundTask,
    WorkerPool,
    chunk_indices,
    default_num_workers,
    resolve_num_workers,
)
from repro.parallel.simulator import (
    SimulatedRun,
    assert_single_worker_replay,
    schedule_tasks,
    split_into_chunks,
)


class TestChunkIndices:
    def test_covers_all_indices(self):
        chunks = chunk_indices(100, 7)
        combined = np.concatenate(chunks)
        assert np.array_equal(np.sort(combined), np.arange(100))

    def test_sizes_differ_by_at_most_one(self):
        sizes = [chunk.size for chunk in chunk_indices(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            chunk_indices(-1, 2)
        with pytest.raises(InvalidParameterError):
            chunk_indices(10, 0)


class TestWorkerPool:
    def test_map_preserves_order(self):
        pool = WorkerPool(num_workers=4)
        assert pool.map(lambda x: x * x, range(10)) == [x * x for x in range(10)]

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(num_workers=1)
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_starmap(self):
        pool = WorkerPool(num_workers=2)
        assert pool.starmap(lambda a, b: a - b, [(5, 2), (10, 3)]) == [3, 7]

    def test_invalid_worker_count(self):
        with pytest.raises(InvalidParameterError):
            WorkerPool(num_workers=0)

    def test_many_small_items_preserve_order(self):
        """The queue-drain path handles far more items than workers."""
        pool = WorkerPool(num_workers=3)
        items = list(range(500))
        assert pool.map(lambda x: x * 2, items) == [x * 2 for x in items]

    def test_worker_exception_propagates(self):
        pool = WorkerPool(num_workers=2)

        def explode(x):
            if x == 5:
                raise ValueError("boom")
            return x

        with pytest.raises(ValueError, match="boom"):
            pool.map(explode, range(10))


class TestMapShared:
    def test_every_item_processed_exactly_once(self):
        pool = WorkerPool(num_workers=4)
        states = pool.map_shared(lambda item, state: state.append(item),
                                 range(200), make_state=list)
        assert 1 <= len(states) <= 4
        combined = sorted(item for state in states for item in state)
        assert combined == list(range(200))

    def test_chunks_stay_contiguous(self):
        pool = WorkerPool(num_workers=3)
        states = pool.map_shared(lambda item, state: state.append(item),
                                 range(90), make_state=list, chunk_size=10)
        for state in states:
            for position in range(0, len(state), 10):
                chunk = state[position:position + 10]
                assert chunk == list(range(chunk[0], chunk[0] + len(chunk)))

    def test_single_worker_runs_inline_with_one_state(self):
        pool = WorkerPool(num_workers=1)
        states = pool.map_shared(lambda item, state: state.append(item * 2),
                                 [1, 2, 3], make_state=list)
        assert states == [[2, 4, 6]]

    def test_shared_state_visible_across_workers(self):
        """Workers communicate through closed-over shared structures."""
        import threading

        pool = WorkerPool(num_workers=4)
        total = [0]
        lock = threading.Lock()

        def add(item, state):
            del state
            with lock:
                total[0] += item

        pool.map_shared(add, range(100), make_state=lambda: None)
        assert total[0] == sum(range(100))

    def test_invalid_chunk_size(self):
        with pytest.raises(InvalidParameterError):
            WorkerPool(num_workers=2).map_shared(lambda i, s: None, [1],
                                                 make_state=list, chunk_size=0)

    def test_exception_propagates(self):
        pool = WorkerPool(num_workers=2)

        def explode(item, state):
            del state
            if item == 7:
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            pool.map_shared(explode, range(20), make_state=list)

    def test_empty_items(self):
        states = WorkerPool(num_workers=3).map_shared(
            lambda item, state: state.append(item), [], make_state=list)
        assert states == [[]]


class TestPersistentPool:
    def test_executor_reused_across_calls(self):
        pool = WorkerPool(num_workers=3, persistent=True)
        assert pool.map(lambda x: x + 1, range(10)) == list(range(1, 11))
        executor = pool._executor
        assert executor is not None
        assert pool.map(lambda x: x * 2, range(10)) == [x * 2 for x in range(10)]
        assert pool._executor is executor

    def test_non_persistent_keeps_no_executor(self):
        pool = WorkerPool(num_workers=3)
        pool.map(lambda x: x, range(10))
        assert pool._executor is None

    def test_map_shared_on_persistent_pool(self):
        pool = WorkerPool(num_workers=2, persistent=True)
        states = pool.map_shared(lambda item, state: state.append(item),
                                 range(50), make_state=list)
        combined = sorted(item for state in states for item in state)
        assert combined == list(range(50))


class TestDefaultNumWorkers:
    def test_unset_env_means_one(self, monkeypatch):
        monkeypatch.delenv(NUM_WORKERS_ENV, raising=False)
        assert default_num_workers() == 1
        assert resolve_num_workers(None) == 1

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "4")
        assert default_num_workers() == 4
        assert resolve_num_workers(None) == 4
        assert WorkerPool(num_workers=None).num_workers == 4

    def test_explicit_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "4")
        assert resolve_num_workers(2) == 2

    @pytest.mark.parametrize("value", ["0", "-3", "two"])
    def test_invalid_env_values_raise(self, monkeypatch, value):
        monkeypatch.setenv(NUM_WORKERS_ENV, value)
        with pytest.raises(InvalidParameterError):
            default_num_workers()

    def test_invalid_explicit_value_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_num_workers(0)


class TestAssertSingleWorkerReplay:
    def test_consistent_timings_pass(self):
        simulated = assert_single_worker_replay([0.2, 0.3], serial_time=0.1,
                                                wall_time=0.62)
        assert simulated == pytest.approx(0.6)

    def test_drifted_timings_fail(self):
        with pytest.raises(AssertionError, match="disagrees"):
            assert_single_worker_replay([0.2, 0.3], serial_time=0.0,
                                        wall_time=5.0, rtol=0.1, atol=0.01)

    def test_negative_wall_time_rejected(self):
        with pytest.raises(InvalidParameterError):
            assert_single_worker_replay([0.1], serial_time=0.0, wall_time=-1.0)


class TestScheduleTasks:
    def test_single_worker_makespan_is_total_work(self):
        schedule = schedule_tasks([1.0, 2.0, 3.0], num_workers=1, sync_overhead=0.0)
        assert schedule.makespan == pytest.approx(6.0)
        assert schedule.total_time == pytest.approx(6.0)

    def test_perfectly_divisible_work_scales_linearly(self):
        schedule = schedule_tasks([1.0] * 8, num_workers=4, sync_overhead=0.0)
        assert schedule.makespan == pytest.approx(2.0)

    def test_makespan_at_least_longest_task(self):
        schedule = schedule_tasks([5.0, 0.1, 0.1], num_workers=8, sync_overhead=0.0)
        assert schedule.makespan == pytest.approx(5.0)

    def test_more_workers_never_increase_makespan(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(0.1, 1.0, 30)
        previous = np.inf
        for workers in (1, 2, 4, 8, 16):
            makespan = schedule_tasks(costs, workers, sync_overhead=0.0).makespan
            assert makespan <= previous + 1e-12
            previous = makespan

    def test_sync_overhead_grows_with_workers(self):
        small = schedule_tasks([1.0], 2, sync_overhead=0.01)
        large = schedule_tasks([1.0], 16, sync_overhead=0.01)
        assert large.sync_overhead > small.sync_overhead

    def test_serial_time_is_added(self):
        schedule = schedule_tasks([1.0], 4, serial_time=2.0, sync_overhead=0.0)
        assert schedule.total_time == pytest.approx(3.0)

    def test_empty_task_list(self):
        schedule = schedule_tasks([], 4, sync_overhead=0.0)
        assert schedule.makespan == 0.0

    def test_negative_cost_raises(self):
        with pytest.raises(InvalidParameterError):
            schedule_tasks([-1.0], 2)

    def test_invalid_worker_count_raises(self):
        with pytest.raises(InvalidParameterError):
            schedule_tasks([1.0], 0)

    def test_worker_loads_sum_to_total_work(self):
        costs = [0.5, 1.5, 2.0, 0.25]
        schedule = schedule_tasks(costs, 3, sync_overhead=0.0)
        assert schedule.total_work == pytest.approx(sum(costs))
        assert schedule.worker_loads.shape == (3,)

    def test_speedup_positive(self):
        schedule = schedule_tasks([1.0] * 10, 5, sync_overhead=0.0)
        assert schedule.speedup > 1.0


class TestSimulatedRun:
    def test_phases_accumulate(self):
        run = SimulatedRun(num_workers=4)
        run.add_phase("transform", [1.0] * 4, sync_overhead=0.0)
        run.add_phase("tree", [2.0, 2.0], sync_overhead=0.0)
        assert run.total_time == pytest.approx(1.0 + 2.0)
        assert set(run.phase_times()) == {"transform", "tree"}

    def test_serial_phase(self):
        run = SimulatedRun(num_workers=8)
        phase = run.add_phase("learning", [], serial_time=0.5, sync_overhead=0.0)
        assert phase.time == pytest.approx(0.5)


class TestSplitIntoChunks:
    def test_sums_to_total(self):
        assert sum(split_into_chunks(103, 9)) == 103

    def test_chunk_count(self):
        assert len(split_into_chunks(10, 4)) == 4

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            split_into_chunks(-1, 3)
        with pytest.raises(InvalidParameterError):
            split_into_chunks(5, 0)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=0, max_size=50),
       st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_schedule_invariants_property(costs, workers):
    """Makespan is between total/workers and total, and loads conserve work."""
    schedule = schedule_tasks(costs, workers, sync_overhead=0.0)
    total = sum(costs)
    assert schedule.total_work == pytest.approx(total)
    assert schedule.makespan <= total + 1e-9
    assert schedule.makespan >= total / workers - 1e-9
    if costs:
        assert schedule.makespan >= max(costs) - 1e-12


class TestBackgroundTask:
    def test_returns_result(self):
        task = BackgroundTask(lambda: 41 + 1)
        assert task.wait(timeout=10.0) == 42
        assert task.done()

    def test_reraises_failure(self):
        def boom():
            raise ValueError("intentional")

        task = BackgroundTask(boom)
        with pytest.raises(ValueError, match="intentional"):
            task.wait(timeout=10.0)

    def test_overlaps_with_caller(self):
        import threading

        gate = threading.Event()
        task = BackgroundTask(lambda: (gate.wait(10.0), "done")[1])
        assert not task.done()  # still parked on the gate
        with pytest.raises(TimeoutError):
            task.wait(timeout=0.01)
        gate.set()
        assert task.wait(timeout=10.0) == "done"
