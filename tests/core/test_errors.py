"""Tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    DatasetError,
    IndexError_,
    InvalidParameterError,
    NotFittedError,
    ReproError,
    SearchError,
)


@pytest.mark.parametrize("exception_type", [
    NotFittedError, InvalidParameterError, DatasetError, IndexError_, SearchError,
])
def test_every_library_error_derives_from_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(ReproError):
        raise DatasetError("bad data")


def test_index_error_does_not_shadow_builtin():
    assert IndexError_ is not IndexError
    assert not issubclass(IndexError_, IndexError)
