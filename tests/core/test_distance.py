"""Tests for the Euclidean distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance import (
    euclidean,
    pairwise_squared_euclidean,
    squared_euclidean,
    squared_euclidean_batch,
    squared_euclidean_batch_abandon,
    squared_euclidean_early_abandon,
    znormalized_euclidean,
)
from repro.core.normalization import znormalize


class TestSquaredEuclidean:
    def test_identical_series_is_zero(self):
        series = np.arange(10, dtype=float)
        assert squared_euclidean(series, series) == 0.0

    def test_known_value(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([1.0, 2.0, 2.0])
        assert squared_euclidean(a, b) == pytest.approx(9.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((2, 30))
        assert squared_euclidean(a, b) == pytest.approx(squared_euclidean(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            squared_euclidean(np.zeros(3), np.zeros(4))

    def test_euclidean_is_sqrt_of_squared(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((2, 16))
        assert euclidean(a, b) == pytest.approx(np.sqrt(squared_euclidean(a, b)))


class TestZnormalizedEuclidean:
    def test_matches_definition(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((2, 64))
        expected = euclidean(znormalize(a), znormalize(b))
        assert znormalized_euclidean(a, b) == pytest.approx(expected)

    def test_invariant_to_scaling_and_shifting(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal((2, 64))
        assert znormalized_euclidean(a, b) == pytest.approx(
            znormalized_euclidean(3 * a + 5, 0.5 * b - 2))


class TestEarlyAbandon:
    def test_equals_full_distance_with_infinite_threshold(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal((2, 100))
        full = squared_euclidean(a, b)
        assert squared_euclidean_early_abandon(a, b, np.inf) == pytest.approx(full)

    def test_abandon_returns_value_above_threshold(self):
        a = np.zeros(100)
        b = np.ones(100)
        result = squared_euclidean_early_abandon(a, b, threshold=5.0, chunk=10)
        assert result > 5.0
        assert result <= 100.0

    def test_small_chunk_still_exact_when_under_threshold(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal((2, 37))
        full = squared_euclidean(a, b)
        assert squared_euclidean_early_abandon(a, b, full + 1.0, chunk=3) == pytest.approx(full)

    def test_invalid_chunk_raises(self):
        with pytest.raises(ValueError):
            squared_euclidean_early_abandon(np.zeros(4), np.zeros(4), 1.0, chunk=0)


class TestBatchDistances:
    def test_batch_matches_loop(self):
        rng = np.random.default_rng(6)
        query = rng.standard_normal(32)
        collection = rng.standard_normal((20, 32))
        batch = squared_euclidean_batch(query, collection)
        loop = np.array([squared_euclidean(query, row) for row in collection])
        assert np.allclose(batch, loop)

    def test_batch_non_negative(self):
        rng = np.random.default_rng(7)
        query = rng.standard_normal(16)
        collection = np.vstack([query] * 5)
        assert (squared_euclidean_batch(query, collection) >= 0).all()

    def test_batch_shape_validation(self):
        with pytest.raises(ValueError):
            squared_euclidean_batch(np.zeros(4), np.zeros((3, 5)))

    def test_pairwise_matches_batch(self):
        rng = np.random.default_rng(8)
        queries = rng.standard_normal((5, 24))
        collection = rng.standard_normal((11, 24))
        pairwise = pairwise_squared_euclidean(queries, collection)
        assert pairwise.shape == (5, 11)
        for i, query in enumerate(queries):
            assert np.allclose(pairwise[i], squared_euclidean_batch(query, collection))

    def test_pairwise_shape_validation(self):
        with pytest.raises(ValueError):
            pairwise_squared_euclidean(np.zeros((2, 3)), np.zeros((4, 5)))


class TestBatchAbandon:
    """The blocked early-abandoning batch kernel (long-series refinement)."""

    def test_infinite_threshold_matches_plain_kernel(self):
        rng = np.random.default_rng(9)
        query = rng.standard_normal(300)
        collection = rng.standard_normal((25, 300))
        abandoned = squared_euclidean_batch_abandon(query, collection, np.inf)
        assert np.allclose(abandoned, squared_euclidean_batch(query, collection),
                           atol=1e-9)

    def test_survivors_exact_and_abandoned_above_threshold(self):
        rng = np.random.default_rng(10)
        query = rng.standard_normal(400)
        collection = rng.standard_normal((60, 400))
        true = squared_euclidean_batch(query, collection)
        threshold = float(np.median(true))
        result = squared_euclidean_batch_abandon(query, collection, threshold,
                                                 chunk=32)
        for value, exact in zip(result, true):
            if value <= threshold:
                assert value == pytest.approx(exact, rel=1e-12)
            else:
                assert value > threshold  # disqualified, exact value not needed

    def test_survivor_values_do_not_depend_on_threshold_or_blocking(self):
        """The bit-identity contract: a surviving row's value is a function of
        (query, row) alone — not of the threshold, nor of the other rows in
        the call."""
        rng = np.random.default_rng(11)
        query = rng.standard_normal(512)
        collection = rng.standard_normal((40, 512))
        loose = squared_euclidean_batch_abandon(query, collection, np.inf)
        true_order = np.argsort(loose)
        tight = squared_euclidean_batch_abandon(query, collection,
                                                float(loose[true_order[10]]))
        surviving = tight <= loose[true_order[10]]
        assert surviving.any()
        assert np.array_equal(tight[surviving], loose[surviving])
        # Single-row calls see the same values as the full-batch call.
        for row in np.flatnonzero(surviving)[:5]:
            alone = squared_euclidean_batch_abandon(query, collection[row][None, :],
                                                    np.inf)
            assert alone[0] == loose[row]

    def test_empty_collection(self):
        result = squared_euclidean_batch_abandon(np.zeros(8), np.empty((0, 8)), 1.0)
        assert result.shape == (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            squared_euclidean_batch_abandon(np.zeros(4), np.zeros((3, 5)), 1.0)
        with pytest.raises(ValueError):
            squared_euclidean_batch_abandon(np.zeros((2, 4)), np.zeros((3, 4)), 1.0)
        with pytest.raises(ValueError):
            squared_euclidean_batch_abandon(np.zeros(4), np.zeros((3, 4)), 1.0,
                                            chunk=0)

    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=96))
    @settings(max_examples=40, deadline=None)
    def test_property_never_underestimates(self, seed, chunk):
        rng = np.random.default_rng(seed)
        query = rng.standard_normal(120)
        collection = rng.standard_normal((12, 120))
        true = squared_euclidean_batch(query, collection)
        threshold = float(rng.uniform(0, true.max() + 1e-9))
        result = squared_euclidean_batch_abandon(query, collection, threshold,
                                                 chunk=chunk)
        for value, exact in zip(result, true):
            assert value == pytest.approx(exact, rel=1e-9) or value > threshold


@given(arrays(np.float64, st.integers(min_value=2, max_value=64),
              elements=st.floats(min_value=-100, max_value=100,
                                 allow_nan=False, allow_infinity=False)),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_early_abandon_never_underestimates(series, seed):
    """Early abandoning either returns the exact value or something >= threshold."""
    rng = np.random.default_rng(seed)
    other = rng.standard_normal(series.shape[0])
    full = squared_euclidean(series, other)
    threshold = full / 2 if full > 0 else 1.0
    result = squared_euclidean_early_abandon(series, other, threshold, chunk=7)
    assert result == pytest.approx(full) or result >= threshold
