"""Tests for the SIMD-style lower-bound kernels (Algorithm 3 reproduction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simd import (
    batch_lower_bound,
    batch_lower_bound_multi,
    batch_lower_bound_pairs,
    chunked_masked_lower_bound,
    scalar_lower_bound,
    vectorized_lower_bound,
)


def _random_case(seed: int, dims: int = 16):
    """A random (query, lower, upper, weights) tuple with valid intervals."""
    rng = np.random.default_rng(seed)
    query = rng.standard_normal(dims)
    centers = rng.standard_normal(dims)
    widths = rng.uniform(0.1, 2.0, dims)
    lower = centers - widths / 2
    upper = centers + widths / 2
    weights = rng.uniform(0.5, 3.0, dims)
    return query, lower, upper, weights


class TestKernelAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_chunked_equals_vectorized(self, seed):
        query, lower, upper, weights = _random_case(seed)
        chunked = chunked_masked_lower_bound(query, lower, upper, weights)
        vectorized = vectorized_lower_bound(query, lower, upper, weights)
        assert chunked == pytest.approx(vectorized)

    @pytest.mark.parametrize("seed", range(10))
    def test_scalar_equals_vectorized(self, seed):
        query, lower, upper, weights = _random_case(seed)
        scalar = scalar_lower_bound(query, lower, upper, weights)
        vectorized = vectorized_lower_bound(query, lower, upper, weights)
        assert scalar == pytest.approx(vectorized)

    @pytest.mark.parametrize("lane_width", [1, 3, 8, 16, 100])
    def test_lane_width_does_not_change_result(self, lane_width):
        query, lower, upper, weights = _random_case(99, dims=33)
        reference = vectorized_lower_bound(query, lower, upper, weights)
        chunked = chunked_masked_lower_bound(query, lower, upper, weights,
                                             lane_width=lane_width)
        assert chunked == pytest.approx(reference)


class TestSemantics:
    def test_inside_interval_contributes_zero(self):
        query = np.array([0.5, -0.5])
        lower = np.array([0.0, -1.0])
        upper = np.array([1.0, 0.0])
        assert vectorized_lower_bound(query, lower, upper) == 0.0

    def test_below_interval_uses_lower_breakpoint(self):
        query = np.array([-2.0])
        lower = np.array([1.0])
        upper = np.array([3.0])
        assert vectorized_lower_bound(query, lower, upper) == pytest.approx(9.0)

    def test_above_interval_uses_upper_breakpoint(self):
        query = np.array([5.0])
        lower = np.array([1.0])
        upper = np.array([3.0])
        assert vectorized_lower_bound(query, lower, upper) == pytest.approx(4.0)

    def test_weights_scale_squared_gaps(self):
        query = np.array([5.0])
        lower = np.array([1.0])
        upper = np.array([3.0])
        weights = np.array([2.0])
        assert vectorized_lower_bound(query, lower, upper, weights) == pytest.approx(8.0)

    def test_unbounded_intervals_contribute_zero(self):
        query = np.array([1e9, -1e9])
        lower = np.array([-np.inf, -np.inf])
        upper = np.array([np.inf, np.inf])
        assert vectorized_lower_bound(query, lower, upper) == 0.0

    def test_boundary_value_on_upper_breakpoint(self):
        """Intervals are half open [lower, upper): a value equal to upper is outside."""
        query = np.array([3.0])
        lower = np.array([1.0])
        upper = np.array([3.0])
        assert scalar_lower_bound(query, lower, upper) == pytest.approx(0.0)
        assert chunked_masked_lower_bound(query, lower, upper) == pytest.approx(0.0)


class TestEarlyAbandoning:
    def test_abandon_returns_partial_sum_above_threshold(self):
        query = np.full(64, 10.0)
        lower = np.zeros(64)
        upper = np.ones(64)
        full = vectorized_lower_bound(query, lower, upper)
        partial = chunked_masked_lower_bound(query, lower, upper, best_so_far=10.0)
        assert partial > 10.0
        assert partial <= full

    def test_no_abandon_when_threshold_not_reached(self):
        query, lower, upper, weights = _random_case(7)
        full = vectorized_lower_bound(query, lower, upper, weights)
        result = chunked_masked_lower_bound(query, lower, upper, weights,
                                            best_so_far=full + 1.0)
        assert result == pytest.approx(full)

    def test_scalar_early_abandon(self):
        query = np.full(32, 10.0)
        lower = np.zeros(32)
        upper = np.ones(32)
        result = scalar_lower_bound(query, lower, upper, best_so_far=5.0)
        assert result > 5.0


class TestBatchLowerBound:
    def test_matches_single_kernel(self):
        rng = np.random.default_rng(11)
        query = rng.standard_normal(8)
        lower = rng.standard_normal((20, 8)) - 1.0
        upper = lower + rng.uniform(0.1, 1.0, (20, 8))
        weights = rng.uniform(0.5, 2.0, 8)
        batch = batch_lower_bound(query, lower, upper, weights)
        singles = np.array([vectorized_lower_bound(query, lower[i], upper[i], weights)
                            for i in range(20)])
        assert np.allclose(batch, singles)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            batch_lower_bound(np.zeros(4), np.zeros((3, 5)), np.zeros((3, 5)))

    def test_default_weights_are_ones(self):
        query = np.array([2.0, -2.0])
        lower = np.array([[0.0, 0.0]])
        upper = np.array([[1.0, 1.0]])
        assert batch_lower_bound(query, lower, upper)[0] == pytest.approx(1.0 + 4.0)


def _random_multi_case(seed: int, num_queries: int = 7, num_candidates: int = 23,
                       dims: int = 16):
    rng = np.random.default_rng(seed)
    queries = rng.standard_normal((num_queries, dims))
    centers = rng.standard_normal((num_candidates, dims))
    widths = rng.uniform(0.1, 2.0, (num_candidates, dims))
    lower = centers - widths / 2
    upper = centers + widths / 2
    weights = rng.uniform(0.5, 3.0, dims)
    return queries, lower, upper, weights


class TestBatchLowerBoundMulti:
    @pytest.mark.parametrize("seed", range(5))
    def test_rows_match_single_query_kernel(self, seed):
        queries, lower, upper, weights = _random_multi_case(seed)
        result = batch_lower_bound_multi(queries, lower, upper, weights)
        assert result.shape == (queries.shape[0], lower.shape[0])
        for row, query in enumerate(queries):
            assert np.allclose(result[row], batch_lower_bound(query, lower, upper, weights))

    def test_query_chunking_does_not_change_result(self):
        # Different chunk sizes may route the weighted-sum finisher to
        # different BLAS kernels, so agreement is up to float rounding.
        queries, lower, upper, weights = _random_multi_case(3, num_queries=11)
        reference = batch_lower_bound_multi(queries, lower, upper, weights)
        for chunk in (1, 2, 5, 100):
            chunked = batch_lower_bound_multi(queries, lower, upper, weights,
                                              query_chunk=chunk)
            assert np.allclose(chunked, reference, rtol=1e-12, atol=1e-12)

    def test_default_weights_are_ones(self):
        queries = np.array([[2.0, -2.0]])
        lower = np.array([[0.0, 0.0]])
        upper = np.array([[1.0, 1.0]])
        result = batch_lower_bound_multi(queries, lower, upper)
        assert result[0, 0] == pytest.approx(1.0 + 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_lower_bound_multi(np.zeros(4), np.zeros((3, 4)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            batch_lower_bound_multi(np.zeros((2, 4)), np.zeros((3, 5)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            batch_lower_bound_multi(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            batch_lower_bound_multi(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((3, 4)),
                                    weights=np.ones(3))
        with pytest.raises(ValueError):
            batch_lower_bound_multi(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((3, 4)),
                                    query_chunk=0)


class TestBatchLowerBoundPairs:
    @pytest.mark.parametrize("seed", range(5))
    def test_pairs_match_cross_product_diagonal(self, seed):
        queries, lower, upper, weights = _random_multi_case(seed, num_queries=9,
                                                            num_candidates=9)
        paired = batch_lower_bound_pairs(queries, lower, upper, weights)
        full = batch_lower_bound_multi(queries, lower, upper, weights)
        assert paired.shape == (9,)
        assert np.allclose(paired, np.diagonal(full))

    def test_gathered_pairs_match_per_pair_kernel(self):
        queries, lower, upper, weights = _random_multi_case(17, num_queries=4,
                                                            num_candidates=30)
        rng = np.random.default_rng(17)
        pair_query = np.sort(rng.integers(0, 4, size=50))
        pair_candidate = rng.integers(0, 30, size=50)
        paired = batch_lower_bound_pairs(queries[pair_query], lower[pair_candidate],
                                         upper[pair_candidate], weights)
        for position in range(50):
            expected = vectorized_lower_bound(queries[pair_query[position]],
                                              lower[pair_candidate[position]],
                                              upper[pair_candidate[position]], weights)
            assert paired[position] == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_lower_bound_pairs(np.zeros(4), np.zeros((1, 4)), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            batch_lower_bound_pairs(np.zeros((2, 4)), np.zeros((3, 4)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            batch_lower_bound_pairs(np.zeros((2, 4)), np.zeros((2, 4)), np.zeros((2, 4)),
                                    weights=np.ones((2, 4)))


class TestValidation:
    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            vectorized_lower_bound(np.zeros(4), np.zeros(5), np.zeros(4))

    def test_bad_lane_width_raises(self):
        with pytest.raises(ValueError):
            chunked_masked_lower_bound(np.zeros(4), np.zeros(4), np.ones(4), lane_width=0)

    def test_2d_query_raises(self):
        with pytest.raises(ValueError):
            vectorized_lower_bound(np.zeros((2, 2)), np.zeros((2, 2)), np.ones((2, 2)))


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_all_kernels_agree_property(seed, dims):
    """The chunked-mask, scalar and vectorized kernels compute the same value."""
    query, lower, upper, weights = _random_case(seed, dims=dims)
    reference = vectorized_lower_bound(query, lower, upper, weights)
    assert chunked_masked_lower_bound(query, lower, upper, weights) == pytest.approx(reference)
    assert scalar_lower_bound(query, lower, upper, weights) == pytest.approx(reference)
    assert batch_lower_bound(query, lower.reshape(1, -1), upper.reshape(1, -1),
                             weights)[0] == pytest.approx(reference)
