"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.core.errors import DatasetError
from repro.core.normalization import is_znormalized
from repro.core.series import Dataset, GrowableArray


class TestConstruction:
    def test_normalizes_by_default(self, small_matrix):
        dataset = Dataset(small_matrix)
        assert is_znormalized(dataset.values)

    def test_normalize_false_keeps_raw_values(self, small_matrix):
        dataset = Dataset(small_matrix, normalize=False)
        assert np.allclose(dataset.values, small_matrix)

    def test_1d_input_becomes_single_row(self):
        dataset = Dataset(np.arange(16, dtype=float))
        assert dataset.num_series == 1
        assert dataset.series_length == 16

    def test_rejects_3d_input(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((2, 3, 4)))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((0, 10)))

    def test_rejects_nan(self):
        values = np.ones((3, 5))
        values[1, 2] = np.nan
        with pytest.raises(DatasetError):
            Dataset(values)

    def test_rejects_infinite(self):
        values = np.ones((3, 5))
        values[0, 0] = np.inf
        with pytest.raises(DatasetError):
            Dataset(values)

    def test_metadata_defaults_to_empty_dict(self, small_matrix):
        assert Dataset(small_matrix).metadata == {}


class TestAccessors:
    def test_len_and_getitem(self, small_matrix):
        dataset = Dataset(small_matrix)
        assert len(dataset) == small_matrix.shape[0]
        assert dataset[0].shape == (small_matrix.shape[1],)

    def test_describe_contains_expected_keys(self, small_matrix):
        info = Dataset(small_matrix, name="toy").describe()
        assert info["name"] == "toy"
        assert info["num_series"] == small_matrix.shape[0]
        assert info["series_length"] == small_matrix.shape[1]
        assert set(info) >= {"mean", "std", "min", "max"}


class TestSample:
    def test_sample_size(self, walk_dataset):
        sample = walk_dataset.sample(0.1, rng=np.random.default_rng(0))
        assert sample.shape[0] == max(1, round(0.1 * walk_dataset.num_series))

    def test_sample_full_fraction_returns_everything(self, walk_dataset):
        sample = walk_dataset.sample(1.0, rng=np.random.default_rng(0))
        assert sample.shape == walk_dataset.values.shape

    def test_tiny_fraction_returns_at_least_one(self, walk_dataset):
        sample = walk_dataset.sample(1e-9, rng=np.random.default_rng(0))
        assert sample.shape[0] == 1

    def test_invalid_fraction_raises(self, walk_dataset):
        with pytest.raises(DatasetError):
            walk_dataset.sample(0.0)
        with pytest.raises(DatasetError):
            walk_dataset.sample(1.5)

    def test_sample_rows_come_from_dataset(self, walk_dataset):
        sample = walk_dataset.sample(0.2, rng=np.random.default_rng(1))
        for row in sample:
            assert any(np.allclose(row, existing) for existing in walk_dataset.values)


class TestSplit:
    def test_split_sizes(self, walk_dataset):
        index_set, queries = walk_dataset.split(10, rng=np.random.default_rng(0))
        assert queries.num_series == 10
        assert index_set.num_series == walk_dataset.num_series - 10

    def test_split_is_disjoint_and_covering(self, walk_dataset):
        index_set, queries = walk_dataset.split(15, rng=np.random.default_rng(2))
        combined = np.vstack([index_set.values, queries.values])
        original_sorted = np.sort(walk_dataset.values.sum(axis=1))
        combined_sorted = np.sort(combined.sum(axis=1))
        assert np.allclose(original_sorted, combined_sorted)

    def test_split_invalid_count_raises(self, walk_dataset):
        with pytest.raises(DatasetError):
            walk_dataset.split(0)
        with pytest.raises(DatasetError):
            walk_dataset.split(walk_dataset.num_series)

    def test_split_deterministic_with_seeded_rng(self, walk_dataset):
        first = walk_dataset.split(5, rng=np.random.default_rng(42))
        second = walk_dataset.split(5, rng=np.random.default_rng(42))
        assert np.allclose(first[0].values, second[0].values)
        assert np.allclose(first[1].values, second[1].values)


class TestGrowableArray:
    def test_starts_empty(self):
        buffer = GrowableArray((4,))
        assert len(buffer) == 0
        assert buffer.view.shape == (0, 4)

    def test_append_returns_start_positions(self):
        buffer = GrowableArray((3,))
        assert buffer.append(np.ones((2, 3))) == 0
        assert buffer.append(np.zeros((5, 3))) == 2
        assert len(buffer) == 7

    def test_view_is_zero_copy(self):
        buffer = GrowableArray((2,))
        buffer.append(np.arange(6, dtype=float).reshape(3, 2))
        view = buffer.view
        assert view.base is buffer._data
        np.testing.assert_array_equal(view, np.arange(6).reshape(3, 2))

    def test_amortized_doubling(self):
        buffer = GrowableArray((1,))
        reallocations = 0
        backing = buffer._data
        for _ in range(1024):
            buffer.append(np.zeros((1, 1)))
            if buffer._data is not backing:
                reallocations += 1
                backing = buffer._data
        # 1024 single-row appends trigger only O(log n) reallocations.
        assert reallocations <= 10
        assert buffer.capacity >= 1024

    def test_growth_preserves_earlier_views(self):
        buffer = GrowableArray((2,))
        buffer.append(np.full((1, 2), 7.0))
        early_view = buffer.view
        buffer.append(np.zeros((100, 2)))  # forces reallocation
        np.testing.assert_array_equal(early_view, [[7.0, 7.0]])

    def test_single_row_and_scalar_rows(self):
        matrix = GrowableArray((3,))
        matrix.append(np.arange(3, dtype=float))  # a bare row is accepted
        assert matrix.view.shape == (1, 3)
        flags = GrowableArray((), dtype=bool)
        flags.append(np.array([True, False]))
        assert flags.view.tolist() == [True, False]

    def test_shape_mismatch_raises(self):
        buffer = GrowableArray((4,))
        with pytest.raises(DatasetError):
            buffer.append(np.zeros((2, 5)))

    def test_negative_capacity_raises(self):
        with pytest.raises(DatasetError):
            GrowableArray((2,), capacity=-1)
