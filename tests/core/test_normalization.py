"""Tests for z-normalization utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.normalization import is_znormalized, znormalize, znormalize_batch


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        normalized = znormalize(series)
        assert abs(normalized.mean()) < 1e-12
        assert abs(normalized.std() - 1.0) < 1e-12

    def test_constant_series_maps_to_zero(self):
        series = np.full(16, 3.7)
        normalized = znormalize(series)
        assert np.allclose(normalized, 0.0)

    def test_already_normalized_is_idempotent(self):
        rng = np.random.default_rng(0)
        series = znormalize(rng.standard_normal(50))
        again = znormalize(series)
        assert np.allclose(series, again)

    def test_shift_and_scale_invariance(self):
        rng = np.random.default_rng(1)
        series = rng.standard_normal(64)
        shifted = 5.0 * series + 100.0
        assert np.allclose(znormalize(series), znormalize(shifted))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((3, 4)))

    def test_preserves_length(self):
        series = np.arange(17, dtype=float)
        assert znormalize(series).shape == (17,)


class TestZnormalizeBatch:
    def test_matches_per_row_normalization(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((10, 32)) * 3 + 1
        batch = znormalize_batch(matrix)
        rows = np.vstack([znormalize(row) for row in matrix])
        assert np.allclose(batch, rows)

    def test_constant_rows_map_to_zero(self):
        matrix = np.vstack([np.full(8, 2.0), np.arange(8, dtype=float)])
        batch = znormalize_batch(matrix)
        assert np.allclose(batch[0], 0.0)
        assert abs(batch[1].mean()) < 1e-12

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            znormalize_batch(np.zeros(8))

    def test_does_not_modify_input(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        original = matrix.copy()
        znormalize_batch(matrix)
        assert np.array_equal(matrix, original)


class TestIsZnormalized:
    def test_accepts_normalized_batch(self):
        rng = np.random.default_rng(3)
        matrix = znormalize_batch(rng.standard_normal((5, 40)))
        assert is_znormalized(matrix)

    def test_accepts_zero_rows(self):
        assert is_znormalized(np.zeros((2, 10)))

    def test_rejects_unnormalized_data(self):
        assert not is_znormalized(np.arange(20, dtype=float).reshape(2, 10) + 5)

    def test_accepts_single_series(self):
        series = znormalize(np.arange(10, dtype=float))
        assert is_znormalized(series)


@given(arrays(np.float64, st.integers(min_value=4, max_value=128),
              elements=st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False, allow_infinity=False)))
@settings(max_examples=50, deadline=None)
def test_znormalize_property(series):
    """For any finite series the result has mean ~0 and std ~1 (or is all zero)."""
    normalized = znormalize(series)
    assert normalized.shape == series.shape
    if np.allclose(normalized, 0.0):
        return
    assert abs(normalized.mean()) < 1e-6
    assert abs(normalized.std() - 1.0) < 1e-6
