"""Tests for TLB, pruning power and the lower-bound property checker."""

import numpy as np
import pytest

from repro.core.lower_bounds import (
    check_lower_bound_property,
    pruning_power,
    tightness_of_lower_bound,
)


class TestTightness:
    def test_perfect_lower_bound_has_tlb_one(self):
        true = np.array([1.0, 2.0, 3.0])
        assert tightness_of_lower_bound(true, true) == pytest.approx(1.0)

    def test_zero_lower_bound_has_tlb_zero(self):
        true = np.array([1.0, 2.0, 3.0])
        assert tightness_of_lower_bound(np.zeros(3), true) == pytest.approx(0.0)

    def test_half_lower_bound(self):
        true = np.array([2.0, 4.0, 8.0])
        assert tightness_of_lower_bound(true / 2, true) == pytest.approx(0.5)

    def test_zero_true_distances_are_skipped(self):
        lower = np.array([0.0, 1.0])
        true = np.array([0.0, 2.0])
        assert tightness_of_lower_bound(lower, true) == pytest.approx(0.5)

    def test_all_degenerate_pairs_give_one(self):
        assert tightness_of_lower_bound(np.zeros(4), np.zeros(4)) == 1.0

    def test_clipping_of_numerical_noise(self):
        true = np.array([1.0])
        lower = np.array([1.0 + 1e-12])
        assert tightness_of_lower_bound(lower, true) <= 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            tightness_of_lower_bound(np.zeros(3), np.zeros(4))


class TestPruningPower:
    def test_all_pruned(self):
        lower = np.array([5.0, 6.0, 7.0, 0.5])
        true = np.array([9.0, 9.0, 9.0, 1.0])
        # Threshold defaults to min(true) = 1.0; the last candidate is the NN.
        assert pruning_power(lower, true) == pytest.approx(0.75)

    def test_nothing_pruned_with_zero_lower_bounds(self):
        lower = np.zeros(10)
        true = np.linspace(1, 10, 10)
        assert pruning_power(lower, true) == 0.0

    def test_explicit_threshold(self):
        lower = np.array([1.0, 2.0, 3.0])
        true = np.array([4.0, 4.0, 4.0])
        assert pruning_power(lower, true, threshold=1.5) == pytest.approx(2 / 3)

    def test_empty_input(self):
        assert pruning_power(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pruning_power(np.zeros(2), np.zeros(3))


class TestLowerBoundProperty:
    def test_valid_lower_bounds_pass(self):
        true = np.array([1.0, 2.0, 3.0])
        assert check_lower_bound_property(true * 0.9, true)

    def test_violations_fail(self):
        true = np.array([1.0, 2.0, 3.0])
        lower = np.array([1.0, 2.5, 3.0])
        assert not check_lower_bound_property(lower, true)

    def test_tolerates_floating_point_noise(self):
        true = np.array([1.0])
        lower = np.array([1.0 + 1e-12])
        assert check_lower_bound_property(lower, true)
