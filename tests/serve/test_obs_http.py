"""Observability over HTTP: /metrics exposition, tracing, slow-query log.

The registry is process-wide and other tests touch it too, so every test
here serves its indexes under names unique to this module — their labelled
children start from zero regardless of what ran before.
"""

from __future__ import annotations

import threading
import urllib.request

import numpy as np
import pytest

from repro.datasets.synthetic import random_walk
from repro.index.sofa import SofaIndex
from repro.serve import IndexServer, SearchApp, ServeConfig


def parse_exposition(text: str) -> "tuple[dict, dict]":
    """Prometheus text format -> ({series: value}, {family: type}).

    Strict enough for the acceptance criteria: metadata must precede
    samples, types must be valid, histogram buckets must be cumulative
    and end at ``+Inf`` with ``_count`` agreeing.
    """
    samples: "dict[str, float]" = {}
    types: "dict[str, str]" = {}
    helped: "set[str]" = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, metric_type = line.split()
            assert name in helped, f"TYPE before HELP for {name}"
            assert metric_type in ("counter", "gauge", "histogram")
            types[name] = metric_type
            continue
        assert not line.startswith("#")
        series, _, value = line.rpartition(" ")
        samples[series] = float(value)
    # Histogram consistency: cumulative buckets, +Inf == _count.
    for name, metric_type in types.items():
        if metric_type != "histogram":
            continue
        buckets = {series: value for series, value in samples.items()
                   if series.startswith(f"{name}_bucket")}
        by_labels: "dict[str, list[tuple[float, float]]]" = {}
        for series, value in buckets.items():
            labels = series[series.index("{") + 1:-1]
            pairs = dict(part.split("=", 1)
                         for part in labels.split(","))
            bound = pairs.pop("le").strip('"')
            key = ",".join(f"{k}={v}" for k, v in sorted(pairs.items()))
            by_labels.setdefault(key, []).append(
                (float("inf") if bound == "+Inf" else float(bound), value))
        for key, entries in by_labels.items():
            entries.sort()
            counts = [value for _, value in entries]
            assert counts == sorted(counts), f"{name} buckets not cumulative"
            assert entries[-1][0] == float("inf")
    return samples, types


def scrape(url: str) -> "tuple[str, str]":
    with urllib.request.urlopen(f"{url}/metrics") as response:
        return response.headers.get("Content-Type"), response.read().decode()


ROWS = random_walk(260, 48, seed=3301)
QUERIES = random_walk(12, 48, seed=3302)


def build_index() -> SofaIndex:
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=16).build(ROWS)


@pytest.fixture()
def obs_app():
    app = SearchApp(ServeConfig(slow_query_s=1e-6, batch_max_wait_s=0.001))
    app.add_index("obs-static", build_index())
    app.add_index("obs-live", build_index().dynamic())
    yield app
    app.close()


@pytest.fixture()
def obs_server(obs_app):
    with IndexServer(obs_app) as server:
        yield server


@pytest.fixture()
def obs_client(obs_server, make_client):
    return make_client(obs_server.url)


class TestMetricsRoute:
    def test_content_type_is_prometheus_text(self, obs_server):
        content_type, _ = scrape(obs_server.url)
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"

    def test_exposition_covers_every_required_family(self, obs_server):
        _, text = scrape(obs_server.url)
        _, types = parse_exposition(text)
        assert types["repro_query_seconds"] == "histogram"
        assert types["repro_queries_total"] == "counter"
        assert types["repro_query_timeouts_total"] == "counter"
        assert types["repro_query_work_total"] == "counter"
        assert types["repro_microbatch_queue_wait_seconds"] == "histogram"
        assert types["repro_microbatch_batches_total"] == "counter"
        assert types["repro_microbatch_shed_total"] == "counter"
        assert types["repro_wal_appends_total"] == "counter"
        assert types["repro_wal_fsync_seconds"] == "histogram"
        assert types["repro_wal_depth"] == "gauge"
        assert types["repro_compactions_total"] == "counter"
        assert types["repro_compaction_phase_seconds"] == "histogram"
        assert types["repro_shard_outcomes_total"] == "counter"
        assert types["repro_shard_retries_total"] == "counter"
        assert types["repro_shard_quarantines_total"] == "counter"

    def test_counters_move_under_concurrent_load(self, obs_client,
                                                 obs_server):
        """Hammer /knn from many threads while scraping; the final scrape
        must account for every request, and every mid-flight scrape must
        stay parseable and monotonic."""
        num_threads, per_thread = 4, 6
        errors: "list[Exception]" = []

        def hammer(offset: int):
            try:
                for position in range(per_thread):
                    query = QUERIES[(offset + position) % len(QUERIES)]
                    status, body = obs_client.post(
                        "/obs-static/knn", {"query": query.tolist(), "k": 3})
                    assert status == 200, body
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(offset,))
                   for offset in range(num_threads)]
        for thread in threads:
            thread.start()
        last = -1.0
        while any(thread.is_alive() for thread in threads):
            _, text = scrape(obs_server.url)
            samples, _ = parse_exposition(text)
            value = samples.get('repro_queries_total{index="obs-static"}',
                                0.0)
            assert value >= last
            last = value
        for thread in threads:
            thread.join()
        assert not errors, errors
        samples, _ = parse_exposition(scrape(obs_server.url)[1])
        total = num_threads * per_thread
        assert samples['repro_queries_total{index="obs-static"}'] == total
        assert samples['repro_query_seconds_count{index="obs-static"}'] \
            == total
        assert samples['repro_query_seconds_bucket{index="obs-static",'
                       'le="+Inf"}'] == total
        # The micro-batch queue saw every one of those requests.
        batched = samples['repro_microbatch_items_total'
                          '{queue="knn-obs-static"}']
        assert batched == total
        waits = samples['repro_microbatch_queue_wait_seconds_count'
                        '{queue="knn-obs-static"}']
        assert waits == total
        work = samples['repro_query_work_total{index="obs-static",'
                       'kind="exact_distances"}']
        assert work > 0

    def test_write_path_gauges_track_the_engine(self, obs_client,
                                                obs_server):
        obs_client.post("/obs-live/insert",
                        {"series": QUERIES[0].tolist()})
        obs_client.post("/obs-live/delete", {"row": 2})
        samples, _ = parse_exposition(scrape(obs_server.url)[1])
        assert samples['repro_delta_pending{index="obs-live"}'] == 1
        assert samples['repro_tombstones{index="obs-live"}'] == 1
        assert samples['repro_index_generation{index="obs-live"}'] == 1
        obs_client.post("/obs-live/compact", {})
        samples, _ = parse_exposition(scrape(obs_server.url)[1])
        assert samples['repro_delta_pending{index="obs-live"}'] == 0
        assert samples['repro_tombstones{index="obs-live"}'] == 0
        assert samples['repro_index_generation{index="obs-live"}'] == 2


class TestTraceRoute:
    def test_traced_answer_is_identical_and_carries_phases(self, obs_client):
        query = QUERIES[0].tolist()
        _, plain = obs_client.post("/obs-static/knn",
                                   {"query": query, "k": 5})
        status, traced = obs_client.post(
            "/obs-static/knn", {"query": query, "k": 5, "trace": True})
        assert status == 200
        assert traced["ids"] == plain["ids"]
        assert traced["distances"] == plain["distances"]
        assert traced["trace"]["phases"]
        assert traced["wall_time_s"] > 0.0
        phase_sum = traced["trace"]["phase_seconds"]
        wall = traced["wall_time_s"]
        assert abs(wall - phase_sum) <= max(0.1 * wall, 1e-3)

    def test_untraced_answer_has_no_trace_key(self, obs_client):
        _, body = obs_client.post("/obs-static/knn",
                                  {"query": QUERIES[0].tolist(), "k": 2})
        assert "trace" not in body and "wall_time_s" not in body

    def test_config_can_refuse_tracing(self):
        app = SearchApp(ServeConfig(tracing=False))
        app.add_index("obs-notrace", build_index())
        try:
            payload = app.knn("obs-notrace", QUERIES[0], k=2, trace=True)
            assert "trace" not in payload
        finally:
            app.close()


class TestSlowQueryRoute:
    def test_slow_queries_are_logged_and_counted(self, obs_client,
                                                 obs_server):
        query = QUERIES[1].tolist()
        obs_client.post("/obs-static/knn", {"query": query, "k": 3})
        obs_client.post("/obs-static/knn",
                        {"query": query, "k": 3, "trace": True})
        status, body = obs_client.get("/slow_queries")
        assert status == 200
        assert body["threshold_s"] == 1e-6
        assert body["logged"] >= 2
        from_this_index = [entry for entry in body["slow_queries"]
                           if entry["index"] == "obs-static"]
        assert from_this_index, body
        traced_entries = [entry for entry in from_this_index
                          if "phases" in entry]
        assert traced_entries, "the traced slow query carries its breakdown"
        assert "breakdown" in from_this_index[-1]
        assert "work" in from_this_index[-1]
        samples, _ = parse_exposition(scrape(obs_server.url)[1])
        assert samples['repro_slow_queries_total{index="obs-static"}'] >= 2

    def test_disabled_log_yields_empty_payload(self):
        app = SearchApp(ServeConfig())
        app.add_index("obs-nolog", build_index())
        try:
            app.knn("obs-nolog", QUERIES[0], k=1)
            assert app.slow_queries() == {
                "threshold_s": None, "logged": 0, "slow_queries": []}
        finally:
            app.close()


class TestBitIdentityThroughServing:
    def test_batched_traced_and_direct_answers_agree(self, obs_app):
        """The traced path bypasses the batcher; the answer must not care."""
        engine = build_index()
        for query in QUERIES[:6]:
            direct = engine.knn(query, k=4)
            via_batcher = obs_app.knn("obs-static", query, k=4)
            via_trace = obs_app.knn("obs-static", query, k=4, trace=True)
            assert via_batcher["ids"] == [int(i) for i in direct.indices]
            assert via_trace["ids"] == via_batcher["ids"]
            np.testing.assert_array_equal(
                np.asarray(via_trace["distances"]),
                np.asarray(via_batcher["distances"]))
