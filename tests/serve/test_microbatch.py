"""The micro-batching queue and the k-NN batcher built on it."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.errors import (
    DrainerError,
    InvalidParameterError,
    OverloadedError,
    SearchError,
    ShutdownError,
    ValidationError,
)
from repro.parallel import MicroBatchQueue
from repro.serve.batching import KnnBatcher


class TestMicroBatchQueue:
    def test_single_submit_round_trips(self):
        queue = MicroBatchQueue(lambda items: [x * 2 for x in items],
                                max_wait_s=0.0)
        try:
            assert queue.submit(21) == 42
        finally:
            queue.close()

    def test_concurrent_submissions_coalesce(self):
        """While one batch is being processed, later submissions pile up and
        are drained as a single following batch."""
        release_first = threading.Event()
        first_entered = threading.Event()

        def process(items):
            if not first_entered.is_set():
                first_entered.set()
                assert release_first.wait(10)
            return [x + 1 for x in items]

        queue = MicroBatchQueue(process, max_batch=64, max_wait_s=0.0)
        try:
            results: dict = {}
            def submit(value):
                results[value] = queue.submit(value, timeout=30)
            first = threading.Thread(target=submit, args=(0,))
            first.start()
            assert first_entered.wait(10)
            rest = [threading.Thread(target=submit, args=(value,))
                    for value in range(1, 6)]
            for thread in rest:
                thread.start()
            # The five stragglers park in the pending list (nothing can drain
            # until the first batch's processor returns); wait until all five
            # actually enqueued before releasing, or the count is racy.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with queue._condition:
                    if len(queue._pending) == 5:
                        break
                time.sleep(0.001)
            release_first.set()
            first.join(10)
            for thread in rest:
                thread.join(10)
            assert results == {value: value + 1 for value in range(6)}
            stats = queue.stats
            assert stats["batched_queries"] == 6
            assert stats["batches"] == 2  # [0] then [1..5] coalesced
            assert stats["largest_batch"] == 5
            assert stats["mean_batch_size"] == 3.0
        finally:
            queue.close()

    def test_exception_outcome_hits_only_its_submitter(self):
        def process(items):
            return [ValueError("poisoned") if x < 0 else x for x in items]

        queue = MicroBatchQueue(process, max_wait_s=0.0)
        try:
            assert queue.submit(5) == 5
            with pytest.raises(ValueError, match="poisoned"):
                queue.submit(-1)
            assert queue.submit(7) == 7  # queue survives the failure
        finally:
            queue.close()

    def test_processor_raising_fails_the_whole_batch(self):
        def process(items):
            raise SearchError("engine exploded")

        queue = MicroBatchQueue(process, max_wait_s=0.0)
        try:
            with pytest.raises(SearchError, match="engine exploded"):
                queue.submit(1)
        finally:
            queue.close()

    def test_wrong_outcome_count_is_a_typed_failure(self):
        queue = MicroBatchQueue(lambda items: [], max_wait_s=0.0)
        try:
            with pytest.raises(InvalidParameterError, match="0 outcomes"):
                queue.submit(1)
        finally:
            queue.close()

    def test_submit_after_close_raises_shutdown(self):
        queue = MicroBatchQueue(lambda items: list(items), max_wait_s=0.0)
        queue.close()
        with pytest.raises(ShutdownError):
            queue.submit(1)

    def test_close_is_idempotent(self):
        queue = MicroBatchQueue(lambda items: list(items), max_wait_s=0.0)
        queue.close()
        queue.close()

    def test_constructor_validation(self):
        with pytest.raises(InvalidParameterError):
            MicroBatchQueue(lambda items: items, max_batch=0)
        with pytest.raises(InvalidParameterError):
            MicroBatchQueue(lambda items: items, max_wait_s=-1.0)
        with pytest.raises(InvalidParameterError):
            MicroBatchQueue(lambda items: items, max_pending=0)


class _PoisonedOutcomes:
    """A Sequence whose *iteration* raises: passes the in-``try`` length
    check, then kills the drain loop in its unprotected delivery phase —
    the exact shape of a drainer-level bug the watchdog exists for."""

    def __init__(self, count: int) -> None:
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        raise MemoryError("injected drainer death")


class TestDrainerWatchdog:
    def test_drainer_death_fails_pending_and_restarts(self):
        """Regression: a drainer-level failure must not wedge the queue.

        Submitters whose items were mid-load when the drainer died get a
        typed :class:`DrainerError` (never a silent hang), the death is
        counted, and a fresh drainer serves the next submission.
        """
        state = {"deaths": 1}

        def process(items):
            if state["deaths"]:
                state["deaths"] -= 1
                return _PoisonedOutcomes(len(items))
            return [item * 2 for item in items]

        queue = MicroBatchQueue(process, max_wait_s=0.0)
        try:
            with pytest.raises(DrainerError, match="drainer died") as excinfo:
                queue.submit(1, timeout=10)
            assert isinstance(excinfo.value.__cause__, MemoryError)
            # The restarted drainer keeps serving the same queue.
            assert queue.submit(21, timeout=10) == 42
            stats = queue.stats
            assert stats["drainer_restarts"] == 1
            assert stats["pending"] == 0
        finally:
            queue.close()

    def test_death_under_concurrency_fails_every_waiter(self):
        release = threading.Event()

        def process(items):
            release.wait(10)
            return _PoisonedOutcomes(len(items))

        queue = MicroBatchQueue(process, max_wait_s=0.0)
        try:
            outcomes: list = [None] * 4

            def ask(position):
                try:
                    outcomes[position] = queue.submit(position, timeout=10)
                except Exception as error:  # noqa: BLE001 - captured
                    outcomes[position] = error

            threads = [threading.Thread(target=ask, args=(position,))
                       for position in range(4)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and queue.stats["batches"] == 0:
                time.sleep(0.001)
            release.set()
            for thread in threads:
                thread.join(10)
            # Every submitter — in the dying batch or queued behind it — got
            # a typed failure; nobody hung.
            assert all(isinstance(outcome, DrainerError)
                       for outcome in outcomes)
        finally:
            queue.close()

    def test_close_after_death_stays_closed(self):
        queue = MicroBatchQueue(lambda items: _PoisonedOutcomes(len(items)),
                                max_wait_s=0.0)
        with pytest.raises(DrainerError):
            queue.submit(1, timeout=10)
        queue.close()
        with pytest.raises(ShutdownError):
            queue.submit(2)


class TestLoadShedding:
    def test_backlog_beyond_max_pending_is_shed(self):
        entered = threading.Event()
        release = threading.Event()

        def process(items):
            entered.set()
            release.wait(10)
            return list(items)

        queue = MicroBatchQueue(process, max_wait_s=0.0, max_pending=2)
        try:
            first = threading.Thread(target=lambda: queue.submit(0, timeout=30))
            first.start()
            assert entered.wait(10)  # the drainer is busy with item 0
            parked = [threading.Thread(
                target=lambda value=value: queue.submit(value, timeout=30))
                for value in (1, 2)]
            for thread in parked:
                thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and queue.pending_depth < 2:
                time.sleep(0.001)
            assert queue.pending_depth == 2
            with pytest.raises(OverloadedError, match="retry shortly"):
                queue.submit(3)
            release.set()
            first.join(10)
            for thread in parked:
                thread.join(10)
            # Draining the backlog restores capacity.
            assert queue.submit(4, timeout=10) == 4
        finally:
            queue.close()


class TestKnnBatcher:
    @pytest.fixture()
    def engine(self, static_index):
        return static_index

    @pytest.fixture()
    def batcher(self, engine):
        knn_batcher = KnnBatcher(lambda: engine, max_wait_s=0.001)
        yield knn_batcher
        knn_batcher.close()

    def test_batched_answers_match_direct_knn(self, batcher, engine,
                                              serve_queries):
        """Answers through the coalescing queue are bit-identical to direct
        per-query knn, under real thread concurrency."""
        expected = [engine.knn(query, k=3) for query in serve_queries]
        results: list = [None] * len(serve_queries)

        def ask(position):
            results[position] = batcher.submit(serve_queries[position], 3, None)

        threads = [threading.Thread(target=ask, args=(position,))
                   for position in range(len(serve_queries))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.distances, want.distances)

    def test_mixed_k_requests_group_correctly(self, batcher, engine,
                                              serve_queries):
        expected_k1 = engine.knn(serve_queries[0], k=1)
        expected_k5 = engine.knn(serve_queries[1], k=5)
        outcomes: dict = {}

        def ask(key, query, k):
            outcomes[key] = batcher.submit(query, k, None)

        threads = [threading.Thread(target=ask,
                                    args=("k1", serve_queries[0], 1)),
                   threading.Thread(target=ask,
                                    args=("k5", serve_queries[1], 5))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        np.testing.assert_array_equal(outcomes["k1"].indices,
                                      expected_k1.indices)
        np.testing.assert_array_equal(outcomes["k5"].indices,
                                      expected_k5.indices)

    def test_malformed_query_cannot_poison_neighbours(self, batcher, engine,
                                                      serve_queries):
        """A wrong-length query in a coalesced batch fails alone; the valid
        neighbour still gets its exact answer."""
        expected = engine.knn(serve_queries[0], k=2)
        outcomes: dict = {}

        def ask_good():
            outcomes["good"] = batcher.submit(serve_queries[0], 2, None)

        def ask_bad():
            try:
                batcher.submit(np.zeros(7), 2, None)
            except Exception as error:  # noqa: BLE001 - captured for assertion
                outcomes["bad"] = error

        threads = [threading.Thread(target=ask_good),
                   threading.Thread(target=ask_bad)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert isinstance(outcomes["bad"], ValidationError)
        np.testing.assert_array_equal(outcomes["good"].indices,
                                      expected.indices)

    def test_k_and_timeout_validated_on_the_callers_thread(self, batcher):
        with pytest.raises(ValidationError, match="k must be an integer"):
            batcher.submit(np.zeros(64), "3", None)
        with pytest.raises(SearchError, match="k must be >= 1"):
            batcher.submit(np.zeros(64), 0, None)
        with pytest.raises(ValidationError, match="timeout_s must be a number"):
            batcher.submit(np.zeros(64), 1, [1.0])

    def test_engine_lookup_is_per_batch(self, make_index, serve_rows,
                                        serve_queries):
        """Swapping the engine behind the getter redirects the next batch —
        the hot-reload contract the app relies on."""
        holder = {"engine": make_index(serve_rows)}
        batcher = KnnBatcher(lambda: holder["engine"], max_wait_s=0.0)
        try:
            before = batcher.submit(serve_queries[0], 1, None)
            holder["engine"] = make_index(serve_rows[:100])
            after = batcher.submit(serve_queries[0], 1, None)
            assert before.stats.num_series == 300
            assert after.stats.num_series == 100
        finally:
            batcher.close()
