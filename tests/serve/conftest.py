"""Shared fixtures of the serving-layer suite: small indexes, app, live server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.datasets.synthetic import random_walk
from repro.index.sofa import SofaIndex
from repro.serve import IndexServer, SearchApp, ServeConfig


@pytest.fixture(scope="module")
def serve_rows() -> np.ndarray:
    """Raw series the served indexes are built from."""
    return random_walk(300, 64, seed=1101)


@pytest.fixture(scope="module")
def serve_queries() -> np.ndarray:
    """Query series (drawn from a different seed, so none is an exact hit)."""
    return random_walk(10, 64, seed=1102)


def _build_index(rows: np.ndarray) -> SofaIndex:
    """A small deterministic SOFA index over ``rows``."""
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=16).build(rows)


@pytest.fixture(scope="session")
def make_index():
    """The index builder as a fixture (importable-free across test modules)."""
    return _build_index


@pytest.fixture(scope="module")
def static_index(serve_rows) -> SofaIndex:
    return _build_index(serve_rows)


@pytest.fixture()
def app(static_index, serve_rows) -> SearchApp:
    """A fresh app serving one read-only and one writable index."""
    search_app = SearchApp(ServeConfig(max_k=10))
    search_app.add_index("static", static_index)
    search_app.add_index("live", _build_index(serve_rows).dynamic())
    yield search_app
    search_app.close()


class HttpClient:
    """Minimal JSON-over-HTTP client for the test server (stdlib only)."""

    def __init__(self, url: str) -> None:
        self.url = url

    def get(self, path: str) -> "tuple[int, dict]":
        return self._request(urllib.request.Request(self.url + path))

    def post(self, path: str, payload: "dict | None" = None,
             raw: "bytes | None" = None) -> "tuple[int, dict]":
        body = raw if raw is not None else json.dumps(payload or {}).encode()
        return self._request(urllib.request.Request(
            self.url + path, data=body,
            headers={"Content-Type": "application/json"}, method="POST"))

    @staticmethod
    def _request(request) -> "tuple[int, dict]":
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture()
def server(app) -> IndexServer:
    """The app behind a real threaded HTTP server on an ephemeral port."""
    with IndexServer(app) as running:
        yield running


@pytest.fixture()
def client(server) -> HttpClient:
    return HttpClient(server.url)


@pytest.fixture(scope="session")
def make_client():
    """The client constructor, for tests running their own server."""
    return HttpClient
