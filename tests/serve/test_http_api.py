"""The HTTP front end: routes, JSON framing, status codes, concurrent load."""

from __future__ import annotations

import json
import threading

import pytest


class TestGetRoutes:
    def test_healthz(self, client):
        status, body = client.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["indexes"] == 2
        assert body["writers"] == {
            "live": {"wal_depth": 0, "delta_pending": 0, "tombstones": 0}}

    def test_indexes(self, client):
        status, body = client.get("/indexes")
        assert status == 200
        names = {entry["name"] for entry in body["indexes"]}
        assert names == {"static", "live"}

    def test_stats(self, client, serve_queries):
        client.post("/static/knn", {"query": serve_queries[0].tolist()})
        status, body = client.get("/stats")
        assert status == 200
        assert body["indexes"]["static"]["search"]["queries"] == 1
        assert body["indexes"]["static"]["batching"]["batched_queries"] == 1

    def test_unknown_get_route_is_404(self, client):
        status, body = client.get("/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"


class TestKnnRoute:
    def test_exact_answer_matches_engine(self, client, static_index,
                                         serve_queries):
        expected = static_index.knn(serve_queries[0], k=3)
        status, body = client.post("/static/knn",
                                   {"query": serve_queries[0].tolist(), "k": 3})
        assert status == 200
        assert body["ids"] == [int(row) for row in expected.indices]
        assert body["distances"] == [float(d) for d in expected.distances]
        assert body["timed_out"] is False

    def test_tiny_timeout_returns_200_with_timed_out_flag(self, client,
                                                          serve_queries):
        """The acceptance scenario: an expired budget must be a well-formed
        degraded answer, never an untyped 500."""
        status, body = client.post("/static/knn",
                                   {"query": serve_queries[0].tolist(),
                                    "k": 2, "timeout_s": 1e-9})
        assert status == 200
        assert body["timed_out"] is True
        assert len(body["ids"]) == 2
        assert all(isinstance(d, float) for d in body["distances"])

    @pytest.mark.parametrize("payload, error_type", [
        ({"query": "zzz"}, "ValidationError"),
        ({"query": [1.0, 2.0]}, "ValidationError"),
        ({"query": None, "k": 1}, "ValidationError"),
        ({"k": "3"}, "ValidationError"),
        ({"k": 0}, "SearchError"),
        ({"k": 99}, "SearchError"),
        ({"timeout_s": "1"}, "ValidationError"),
        ({"timeout_s": -1.0}, "InvalidParameterError"),
    ])
    def test_bad_requests_are_400(self, client, serve_queries, payload,
                                  error_type):
        body = {"query": serve_queries[0].tolist()}
        body.update(payload)
        status, answer = client.post("/static/knn", body)
        assert status == 400
        assert answer["error"]["type"] == error_type
        assert answer["error"]["status"] == 400

    def test_unknown_index_is_404(self, client, serve_queries):
        status, body = client.post("/ghost/knn",
                                   {"query": serve_queries[0].tolist()})
        assert status == 404
        assert body["error"]["type"] == "UnknownIndexError"

    def test_concurrent_storm_is_correct(self, client, static_index,
                                         serve_queries):
        """Many client threads, every answer bit-identical to the engine."""
        expected = {position: static_index.knn(query, k=3)
                    for position, query in enumerate(serve_queries)}
        failures: list = []

        def storm(position):
            want = expected[position % len(serve_queries)]
            query = serve_queries[position % len(serve_queries)].tolist()
            for _ in range(5):
                status, body = client.post("/static/knn",
                                           {"query": query, "k": 3})
                if status != 200:
                    failures.append(body)
                    return
                if body["ids"] != [int(row) for row in want.indices]:
                    failures.append((body["ids"], want.indices))
                    return

        threads = [threading.Thread(target=storm, args=(position,))
                   for position in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not failures


class TestWriteRoutes:
    def test_insert_query_delete_cycle(self, client, serve_queries):
        probe = serve_queries[5].tolist()
        status, inserted = client.post("/live/insert", {"series": probe})
        assert status == 200
        (row,) = inserted["ids"]
        status, answer = client.post("/live/knn", {"query": probe, "k": 1})
        assert status == 200
        assert answer["ids"] == [row]
        status, deleted = client.post("/live/delete", {"row": row})
        assert status == 200
        assert deleted["num_surviving"] == 300

    def test_write_to_static_index_is_409(self, client, serve_queries):
        status, body = client.post("/static/insert",
                                   {"series": serve_queries[0].tolist()})
        assert status == 409
        assert body["error"]["type"] == "ReadOnlyIndexError"

    def test_compact_bumps_generation(self, client, serve_queries):
        client.post("/live/insert", {"series": serve_queries[6].tolist()})
        status, body = client.post("/live/compact")
        assert status == 200
        assert body["generation"] == 2
        status, answer = client.post("/live/knn",
                                     {"query": serve_queries[6].tolist(),
                                      "k": 1})
        assert answer["generation"] == 2
        assert answer["distances"][0] == pytest.approx(0.0, abs=1e-12)

    def test_double_delete_is_409(self, client):
        client.post("/live/delete", {"row": 3})
        status, body = client.post("/live/delete", {"row": 3})
        assert status == 409
        assert body["error"]["type"] == "IndexError_"


class TestFraming:
    def test_invalid_json_body_is_400(self, client):
        status, body = client.post("/static/knn", raw=b"{not json")
        assert status == 400
        assert body["error"]["type"] == "ValidationError"
        assert "not valid JSON" in body["error"]["message"]

    def test_non_object_body_is_400(self, client):
        status, body = client.post("/static/knn", raw=b"[1, 2, 3]")
        assert status == 400
        assert "JSON object" in body["error"]["message"]

    def test_oversized_body_is_400(self, static_index, serve_queries,
                                   make_client):
        from repro.serve import IndexServer, SearchApp, ServeConfig

        app = SearchApp(ServeConfig(request_body_limit=2048))
        app.add_index("static", static_index)
        with IndexServer(app) as server:
            small_client = make_client(server.url)
            oversized = json.dumps(
                {"query": serve_queries[0].tolist() * 100}).encode()
            assert len(oversized) > 2048
            status, body = small_client.post("/static/knn", raw=oversized)
            assert status == 400
            assert "exceeds the server's limit" in body["error"]["message"]
