"""Serving under partial failure and overload: degraded health, shedding,
graceful shutdown.

Covers the serving half of the sharded fault-tolerance contract:

* ``SearchApp.load_sharded`` serves a sharded directory; ``/healthz`` keeps
  its exact healthy shape until a shard quarantines, then flips to
  ``"degraded"`` (still 200) with per-shard states;
* ``/knn`` answers carry ``partial`` / ``coverage``; ``degraded="forbid"``
  surfaces as a typed 503;
* a full micro-batch backlog sheds requests with 503 + ``Retry-After``
  instead of queueing without bound;
* ``IndexServer.stop`` drains in-flight requests before closing the queues —
  clients that were already being served get their answers, not resets.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.errors import CorruptionError
from repro.datasets.synthetic import random_walk
from repro.index.shard_health import HealthPolicy, RetryPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex
from repro.serve import IndexServer, SearchApp, ServeConfig

SERIES_LENGTH = 48


def _rows(count: int, seed: int) -> np.ndarray:
    return random_walk(count, SERIES_LENGTH, seed=seed)


@pytest.fixture(scope="module")
def shard_rows() -> np.ndarray:
    return _rows(120, seed=9901)


@pytest.fixture()
def sharded_dir(tmp_path, shard_rows):
    path = tmp_path / "shards"
    ShardedIndex.build(shard_rows, path, num_shards=4,
                       index_factory=lambda: SofaIndex(
                           word_length=8, alphabet_size=16, leaf_size=12),
                       health=HealthPolicy(auto_probe=False)).close()
    return path


def _post(url: str, path: str, payload: dict):
    """POST returning (status, payload, headers) — headers matter here."""
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestShardedServing:
    @pytest.fixture()
    def served(self, sharded_dir):
        app = SearchApp(ServeConfig())
        entry = app.load_sharded(
            "shardy", sharded_dir,
            retry=RetryPolicy(max_attempts=1),
            health=HealthPolicy(auto_probe=False))
        with IndexServer(app) as server:
            yield server, entry
        entry.engine.close()

    def _quarantine(self, entry, shard: int) -> None:
        """Trip one shard's quarantine exactly as a corrupt load would."""
        engine = entry.engine
        with engine._shards[shard].lock:
            if engine._shards[shard].engine is not None:
                engine._shards[shard].engine.close()
            engine._shards[shard].engine = None
        engine._board.record_persistent(
            shard, CorruptionError("injected for the serving test"))

    def test_healthz_shape_is_stable_while_healthy(self, served):
        server, _entry = served
        assert _get(server.url, "/healthz")[1] == {"status": "ok",
                                                   "indexes": 1}

    def test_knn_payload_carries_coverage(self, served, shard_rows):
        server, _entry = served
        status, payload, _ = _post(server.url, "/shardy/knn",
                                   {"query": shard_rows[5].tolist(), "k": 3})
        assert status == 200
        assert payload["partial"] is False
        assert payload["coverage"] == 1.0
        assert payload["ids"][0] == 5

    def test_degraded_health_stats_and_indexes(self, served, shard_rows):
        server, entry = served
        self._quarantine(entry, 2)
        status, payload, _ = _post(server.url, "/shardy/knn",
                                   {"query": shard_rows[5].tolist(), "k": 3})
        assert status == 200
        assert payload["partial"] is True
        assert payload["coverage"] == pytest.approx(3 / 4)

        status, health = _get(server.url, "/healthz")
        assert status == 200  # degraded is alive, not dead
        assert health["status"] == "degraded"
        shard_states = health["shards"]["shardy"]
        assert shard_states["quarantined"] == 1
        assert shard_states["shards"][2]["state"] == "quarantined"

        _status, stats = _get(server.url, "/stats")
        search = stats["indexes"]["shardy"]["search"]
        assert search["partial_answers"] == 1
        assert search["coverage"] < 1.0
        assert stats["indexes"]["shardy"]["shards"]["quarantined"] == 1

        _status, listing = _get(server.url, "/indexes")
        (description,) = listing["indexes"]
        assert description["type"] == "sharded[sofa]x4"
        assert description["shards"]["quarantine_trips"] == 1

    def test_forbid_policy_is_a_typed_503(self, sharded_dir, shard_rows):
        app = SearchApp(ServeConfig())
        entry = app.load_sharded("strict", sharded_dir, degraded="forbid",
                                 retry=RetryPolicy(max_attempts=1),
                                 health=HealthPolicy(auto_probe=False))
        with IndexServer(app) as server:
            self._quarantine(entry, 0)
            status, payload, _ = _post(server.url, "/strict/knn",
                                       {"query": shard_rows[0].tolist()})
            assert status == 503
            assert payload["error"]["type"] == "PartialResultError"
        entry.engine.close()


class _SlowEngine:
    """Delay every batched call — enough to hold a backlog open."""

    def __init__(self, engine, delay_s: float) -> None:
        self._engine = engine
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def knn_batch(self, *args, **kwargs):
        time.sleep(self._delay_s)
        return self._engine.knn_batch(*args, **kwargs)


class TestLoadShedding:
    def test_full_backlog_sheds_with_retry_after(self, make_index,
                                                 serve_rows, serve_queries):
        config = ServeConfig(batching=True, batch_max_size=1,
                             batch_max_wait_s=0.0, max_pending=1,
                             retry_after_s=2.0, shutdown_drain_s=10.0)
        app = SearchApp(config)
        app.add_index("slow", _SlowEngine(make_index(serve_rows),
                                          delay_s=0.25))
        with IndexServer(app) as server:
            query = serve_queries[0].tolist()
            responses: list = []
            lock = threading.Lock()

            def ask():
                outcome = _post(server.url, "/slow/knn", {"query": query})
                with lock:
                    responses.append(outcome)

            threads = [threading.Thread(target=ask) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)

            statuses = sorted(status for status, _, _ in responses)
            assert set(statuses) <= {200, 503}
            assert statuses.count(503) >= 1, "nothing was shed"
            assert statuses.count(200) >= 2, "shedding rejected everything"
            for status, payload, headers in responses:
                if status == 503:
                    assert payload["error"]["type"] == "OverloadedError"
                    assert headers.get("Retry-After") == "2"


class TestGracefulShutdown:
    def test_in_flight_requests_finish_before_close(self, make_index,
                                                    serve_rows,
                                                    serve_queries):
        """Concurrent requests racing a stop(): everyone already accepted is
        answered (200, exact ids), nobody gets a dropped connection, and the
        server refuses connections afterwards."""
        config = ServeConfig(batching=True, batch_max_size=8,
                             batch_max_wait_s=0.0, shutdown_drain_s=10.0)
        app = SearchApp(config)
        engine = make_index(serve_rows)
        app.add_index("slow", _SlowEngine(engine, delay_s=0.3))
        server = IndexServer(app).start()
        url, port = server.url, server.port
        expected = engine.knn(serve_queries[0], k=2)

        outcomes: list = []
        lock = threading.Lock()
        started = threading.Barrier(5)

        def ask():
            started.wait(10)
            try:
                outcome = _post(url, "/slow/knn",
                                {"query": serve_queries[0].tolist(), "k": 2})
            except Exception as error:  # noqa: BLE001 - captured
                outcome = error
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=ask) for _ in range(4)]
        for thread in threads:
            thread.start()
        started.wait(10)
        # The drain contract covers *accepted* requests (a connection still
        # in the kernel's accept queue may legitimately be reset), so wait
        # until all four are actually in flight before pulling the plug —
        # the engine delay holds them there well past this point.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and server._httpd.in_flight < 4:
            time.sleep(0.001)
        assert server._httpd.in_flight == 4
        server.stop()
        for thread in threads:
            thread.join(30)

        assert len(outcomes) == 4
        for outcome in outcomes:
            assert not isinstance(outcome, Exception), (
                f"an in-flight request was dropped: {outcome!r}")
            status, payload, _ = outcome
            assert status == 200
            assert payload["ids"] == [int(r) for r in expected.indices]

        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2).close()

    def test_stop_is_idempotent_and_fast_when_idle(self, make_index,
                                                   serve_rows):
        app = SearchApp(ServeConfig(shutdown_drain_s=5.0))
        app.add_index("idx", make_index(serve_rows))
        server = IndexServer(app).start()
        started = time.monotonic()
        server.stop()
        server.stop()
        assert time.monotonic() - started < 5.0, (
            "an idle stop must not burn the whole drain budget")
