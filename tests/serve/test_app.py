"""The HTTP-free application layer: registry, limits, writes, stats, reload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    InvalidParameterError,
    ReadOnlyIndexError,
    SearchError,
    UnknownIndexError,
    ValidationError,
)
from repro.serve import SearchApp, ServeConfig


class TestConfig:
    def test_rejects_bad_limits(self):
        with pytest.raises(InvalidParameterError):
            ServeConfig(max_k=0)
        with pytest.raises(InvalidParameterError):
            ServeConfig(max_timeout_s=0)
        with pytest.raises(InvalidParameterError):
            ServeConfig(default_timeout_s=-1.0)
        with pytest.raises(InvalidParameterError):
            ServeConfig(batch_max_size=0)
        with pytest.raises(InvalidParameterError):
            ServeConfig(batch_max_wait_s=-0.1)
        with pytest.raises(InvalidParameterError):
            ServeConfig(request_body_limit=10)

    def test_clamp_timeout(self):
        config = ServeConfig(max_timeout_s=5.0, default_timeout_s=2.0)
        assert config.clamp_timeout(None) == 2.0
        assert config.clamp_timeout(1.5) == 1.5
        assert config.clamp_timeout(100.0) == 5.0
        # No default: absent stays unbounded.
        assert ServeConfig().clamp_timeout(None) is None

    def test_clamp_passes_malformed_values_to_the_engine(self):
        """Bad budgets must reach the engine's typed validation untouched
        (min() over a string would raise an untyped TypeError here)."""
        config = ServeConfig(max_timeout_s=5.0)
        assert config.clamp_timeout("1") == "1"
        assert config.clamp_timeout(-3.0) == -3.0
        assert config.clamp_timeout(True) is True


class TestRegistry:
    def test_list_and_describe(self, app):
        listing = app.list_indexes()["indexes"]
        by_name = {entry["name"]: entry for entry in listing}
        assert by_name["static"]["read_only"] is True
        assert by_name["static"]["type"] == "sofa"
        assert by_name["live"]["read_only"] is False
        assert by_name["live"]["type"] == "dynamic[sofa]"
        assert by_name["live"]["generation"] == 1
        assert by_name["live"]["num_series"] == 300
        assert by_name["live"]["series_length"] == 64

    def test_unknown_index_is_typed(self, app):
        with pytest.raises(UnknownIndexError, match="no index named 'nope'"):
            app.knn("nope", np.zeros(64))

    def test_bad_index_name_rejected(self, app, static_index):
        with pytest.raises(ValidationError):
            app.add_index("", static_index)
        with pytest.raises(ValidationError):
            app.add_index("a/b", static_index)

    def test_healthz(self, app):
        payload = app.healthz()
        assert payload["status"] == "ok"
        assert payload["indexes"] == 2
        # The writable index reports its write-path debt.
        assert payload["writers"] == {
            "live": {"wal_depth": 0, "delta_pending": 0, "tombstones": 0}}


class TestKnn:
    def test_answers_match_direct_engine(self, app, static_index,
                                         serve_queries):
        expected = static_index.knn(serve_queries[0], k=3)
        payload = app.knn("static", serve_queries[0], k=3)
        assert payload["ids"] == [int(row) for row in expected.indices]
        assert payload["distances"] == [float(d) for d in expected.distances]
        assert payload["timed_out"] is False
        assert payload["generation"] == 1

    def test_k_limit_enforced(self, app, serve_queries):
        with pytest.raises(SearchError, match="max_k=10"):
            app.knn("static", serve_queries[0], k=11)

    def test_k_and_timeout_validation_is_typed(self, app, serve_queries):
        with pytest.raises(ValidationError, match="k must be an integer"):
            app.knn("static", serve_queries[0], k="3")
        with pytest.raises(ValidationError, match="timeout_s must be a number"):
            app.knn("static", serve_queries[0], timeout_s="1")
        with pytest.raises(InvalidParameterError,
                           match="timeout_s must be positive"):
            app.knn("static", serve_queries[0], timeout_s=-1.0)

    def test_tiny_timeout_is_a_well_formed_answer(self, app, serve_queries):
        """An expired budget is a degraded answer, not an error: the payload
        carries timed_out=True and exact distances for what was refined."""
        payload = app.knn("static", serve_queries[0], k=2, timeout_s=1e-9)
        assert payload["timed_out"] is True
        assert len(payload["ids"]) == 2
        assert payload["distances"] == sorted(payload["distances"])

    def test_without_batching_same_answers(self, static_index, serve_queries):
        app = SearchApp(ServeConfig(batching=False))
        app.add_index("static", static_index)
        try:
            expected = static_index.knn(serve_queries[1], k=4)
            payload = app.knn("static", serve_queries[1], k=4)
            assert payload["ids"] == [int(row) for row in expected.indices]
            listing = app.list_indexes()["indexes"][0]
            assert listing["batching"] is False
        finally:
            app.close()

    def test_stats_accumulate(self, app, serve_queries):
        app.knn("static", serve_queries[0], k=1)
        app.knn("static", serve_queries[1], k=1, timeout_s=1e-9)
        report = app.stats()["indexes"]["static"]
        assert report["search"]["queries"] == 2
        assert report["search"]["timed_out"] == 1
        assert report["search"]["series_served"] == 600
        assert 0.0 <= report["search"]["pruning_ratio"] <= 1.0
        assert report["batching"]["batched_queries"] == 2


class TestWrites:
    def test_static_index_rejects_writes(self, app, serve_queries):
        with pytest.raises(ReadOnlyIndexError):
            app.insert("static", serve_queries[0])
        with pytest.raises(ReadOnlyIndexError):
            app.delete("static", 0)
        with pytest.raises(ReadOnlyIndexError):
            app.compact("static")

    def test_insert_delete_roundtrip(self, app, serve_rows):
        inserted = app.insert("live", serve_rows[0])
        (row,) = inserted["ids"]
        assert row == 300
        assert inserted["num_surviving"] == 301
        deleted = app.delete("live", row)
        assert deleted["num_surviving"] == 300

    def test_insert_batch(self, app, serve_rows):
        payload = app.insert("live", serve_rows[:5])
        assert payload["ids"] == [300, 301, 302, 303, 304]

    def test_delete_row_validation_is_typed(self, app):
        with pytest.raises(ValidationError, match="row must be an integer"):
            app.delete("live", "7")

    def test_inserted_rows_are_immediately_searchable(self, app, serve_queries):
        probe = serve_queries[3]
        (row,) = app.insert("live", probe)["ids"]
        payload = app.knn("live", probe, k=1)
        assert payload["ids"] == [row]
        assert payload["distances"][0] == pytest.approx(0.0, abs=1e-9)


class TestCompact:
    def test_compact_bumps_generation_and_keeps_answers(self, app,
                                                        serve_queries):
        before = app.knn("live", serve_queries[0], k=3)
        inserted = app.insert("live", np.tile(serve_queries[9], (3, 1)))
        for row in inserted["ids"]:
            app.delete("live", row)
        payload = app.compact("live")
        assert payload["generation"] == 2
        assert payload["dropped_rows"] == 3
        assert payload["saved"] is False
        after = app.knn("live", serve_queries[0], k=3)
        assert after["generation"] == 2
        assert after["ids"] == before["ids"]
        assert after["distances"] == before["distances"]

    def test_snapshot_backed_compact_resaves_in_place(self, tmp_path,
                                                      make_index, serve_rows,
                                                      serve_queries):
        snapshot = tmp_path / "live-snapshot"
        make_index(serve_rows).dynamic().save(snapshot)
        app = SearchApp(ServeConfig(max_k=10))
        try:
            app.load_snapshot("live", snapshot, writable=True)
            app.insert("live", serve_rows[:2])
            payload = app.compact("live")
            assert payload["saved"] is True
            assert payload["num_surviving"] == 302
            # A fresh app restarted from the same directory resumes from the
            # compacted state — the in-place re-save is the restart story.
            restarted = SearchApp(ServeConfig(max_k=10))
            try:
                restarted.load_snapshot("live", snapshot, writable=True)
                listing = restarted.list_indexes()["indexes"][0]
                assert listing["num_series"] == 302
                want = app.knn("live", serve_queries[0], k=3)
                got = restarted.knn("live", serve_queries[0], k=3)
                assert got["ids"] == want["ids"]
                assert got["distances"] == want["distances"]
            finally:
                restarted.close()
        finally:
            app.close()


class TestSnapshotLoading:
    def test_read_only_snapshot_serves_and_rejects_writes(self, tmp_path,
                                                          make_index,
                                                          serve_rows,
                                                          serve_queries):
        snapshot = tmp_path / "static-snapshot"
        index = make_index(serve_rows)
        index.save(snapshot)
        app = SearchApp()
        try:
            entry = app.load_snapshot("frozen", snapshot)
            assert entry.read_only is True
            expected = index.knn(serve_queries[0], k=2)
            payload = app.knn("frozen", serve_queries[0], k=2)
            assert payload["ids"] == [int(row) for row in expected.indices]
            with pytest.raises(ReadOnlyIndexError):
                app.insert("frozen", serve_rows[0])
        finally:
            app.close()
