"""Readiness, graceful signals, and the worker-mode RPC surface.

* ``GET /readyz`` answers 503 until the app can actually serve (an index is
  loaded, every micro-batch drainer is alive, the app is not draining) and
  200 after — distinct from ``/healthz``, which stays 200-with-degraded as
  pure liveness;
* worker mode (``ServeConfig(worker_mode=True)``) exposes the shard RPC
  actions and refuses the public write routes with a typed 403-class error
  (shard-local writes would desync the cluster coordinator's id maps);
  worker actions do not exist on a normal server;
* a served process asked to stop via SIGTERM/SIGINT drains in flight
  requests and exits 0 — the supervisor-facing "deliberate stop" contract.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import IndexServer, SearchApp, ServeConfig

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


class TestReadyz:
    def test_not_ready_before_any_index(self, make_client):
        app = SearchApp(ServeConfig())
        try:
            with IndexServer(app) as server:
                status, payload = make_client(server.url).get("/readyz")
                assert status == 503
                assert payload["ready"] is False
                assert any("no index" in reason
                           for reason in payload["reasons"])
        finally:
            app.close()

    def test_ready_with_an_index_and_live_drainer(self, client):
        status, payload = client.get("/readyz")
        assert status == 503 or status == 200  # resolved below
        assert payload["ready"] is (status == 200)
        assert status == 200
        assert payload["indexes"] == 2
        assert "reasons" not in payload

    def test_healthz_stays_liveness_only(self, client):
        # /healthz is for "is the process alive", /readyz for "send traffic".
        status, _payload = client.get("/healthz")
        assert status == 200

    def test_draining_app_reports_not_ready(self, app, make_client):
        with IndexServer(app) as server:
            http = make_client(server.url)
            assert http.get("/readyz")[0] == 200
            app.close()
            status, payload = http.get("/readyz")
            assert status == 503
            assert any("draining" in reason for reason in payload["reasons"])

    def test_dead_drainer_reports_not_ready(self, app, make_client):
        with IndexServer(app) as server:
            http = make_client(server.url)
            assert http.get("/readyz")[0] == 200
            # Kill one index's micro-batch drainer out from under the app —
            # the readiness probe must notice the zombie.
            entry = app._entry("live")
            assert entry.batcher is not None
            entry.batcher.close()
            status, payload = http.get("/readyz")
            assert status == 503
            assert any("drainer" in reason for reason in payload["reasons"])


class TestWorkerMode:
    @pytest.fixture()
    def worker_server(self, serve_rows, make_index):
        app = SearchApp(ServeConfig(worker_mode=True, batching=False,
                                    max_k=50))
        app.add_index("shard", make_index(serve_rows).dynamic())
        try:
            with IndexServer(app) as server:
                yield server
        finally:
            app.close()

    def test_shard_rpc_routes_answer(self, worker_server, serve_queries,
                                     make_client):
        http = make_client(worker_server.url)
        status, payload = http.post("/shard/shard_knn", {
            "query": [float(v) for v in serve_queries[0]], "k": 3})
        assert status == 200
        assert len(payload["ids"]) == 3
        assert len(payload["squared"]) == 3
        assert payload["surviving"] > 0
        status, payload = http.post("/shard/shard_probe", {})
        assert status == 200 and payload["ok"] is True

    def test_worker_mode_refuses_public_writes(self, worker_server,
                                               serve_rows, make_client):
        http = make_client(worker_server.url)
        for action in ("insert", "delete", "compact"):
            status, payload = http.post(f"/shard/{action}",
                                        {"series": [0.0], "row": 0})
            assert payload["error"]["type"] == "ReadOnlyIndexError"
            assert "coordinator" in payload["error"]["message"]

    def test_normal_server_has_no_shard_routes(self, client, serve_queries):
        status, payload = client.post("/static/shard_knn", {
            "query": [float(v) for v in serve_queries[0]], "k": 3})
        assert status == 404


class TestSignalDrain:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_served_process_exits_zero_on_signal(self, tmp_path, signum):
        script = tmp_path / "serve_until_signal.py"
        script.write_text(textwrap.dedent("""
            import sys
            import numpy as np
            from repro.datasets.synthetic import random_walk
            from repro.index.sofa import SofaIndex
            from repro.serve import IndexServer, SearchApp, ServeConfig

            app = SearchApp(ServeConfig(batching=False))
            app.add_index(
                "idx",
                SofaIndex(word_length=8, alphabet_size=16,
                          leaf_size=16).build(random_walk(64, 32, seed=7)))
            server = IndexServer(app)
            triggered = server.install_signal_handlers()
            server.start()
            print("READY", flush=True)
            triggered.wait()
            server.stop()
            app.close()
            print("DRAINED", flush=True)
        """))
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen([sys.executable, str(script)], env=env,
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE, text=True)
        try:
            assert process.stdout.readline().strip() == "READY"
            process.send_signal(signum)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "DRAINED" in stdout  # the drain ran, not an abort
        finally:
            if process.poll() is None:
                process.kill()

    def test_worker_entrypoint_exits_zero_on_sigterm(self, tmp_path,
                                                     serve_rows, make_index):
        from repro.index.persistence import save_index

        snapshot = tmp_path / "snap"
        save_index(make_index(serve_rows), snapshot)
        endpoint_file = tmp_path / "endpoint.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker",
             "--snapshot-dir", str(snapshot),
             "--endpoint-file", str(endpoint_file)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        try:
            deadline = time.monotonic() + 30.0
            while not endpoint_file.exists():
                assert time.monotonic() < deadline, "worker never published"
                assert process.poll() is None, process.stderr.read()
                time.sleep(0.02)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
            assert process.returncode == 0
        finally:
            if process.poll() is None:
                process.kill()
