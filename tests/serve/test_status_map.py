"""The typed-error → HTTP-status map: totality, specificity, payload shape."""

from __future__ import annotations

import pytest

from repro.core import errors as error_module
from repro.core.errors import (
    CorruptionError,
    DatasetError,
    IndexError_,
    InvalidParameterError,
    NotFittedError,
    ReadOnlyIndexError,
    ReproError,
    SearchError,
    ShutdownError,
    UnknownIndexError,
    ValidationError,
    WalError,
)
from repro.serve.errors import STATUS_MAP, error_payload, status_for


def all_repro_error_types() -> "set[type]":
    """Every ReproError subclass reachable from the hierarchy, recursively."""
    found: "set[type]" = set()
    frontier = [ReproError]
    while frontier:
        current = frontier.pop()
        if current in found:
            continue
        found.add(current)
        frontier.extend(current.__subclasses__())
    return found


class TestTotality:
    def test_every_error_type_gets_a_status(self):
        """The map is total over the whole hierarchy — no typed failure can
        reach the HTTP layer without a deliberate status code."""
        for error_type in all_repro_error_types():
            status = status_for(error_type("boom"))
            assert 400 <= status < 600, (
                f"{error_type.__name__} resolved to non-HTTP status {status}")

    def test_module_declares_no_unmapped_public_errors(self):
        """Every public exception in repro.core.errors resolves through an
        explicit map row (not only via the ReproError fallback) unless it IS
        the base class — so adding an error type forces a mapping decision."""
        explicit = {error_type for error_type, _ in STATUS_MAP}
        for name in dir(error_module):
            obj = getattr(error_module, name)
            if (isinstance(obj, type) and issubclass(obj, ReproError)
                    and obj is not ReproError):
                matched = next(t for t, _ in STATUS_MAP
                               if issubclass(obj, t))
                assert matched is not ReproError or obj in explicit, (
                    f"{name} only matches the ReproError catch-all; "
                    f"add it to STATUS_MAP")

    def test_non_library_errors_are_server_bugs(self):
        assert status_for(RuntimeError("x")) == 500
        assert status_for(KeyError("x")) == 500


class TestSpecificity:
    @pytest.mark.parametrize("error, status", [
        (ValidationError("bad query"), 400),
        (InvalidParameterError("bad parameter"), 400),
        (DatasetError("bad dataset"), 400),
        (SearchError("k too large"), 400),
        (UnknownIndexError("no such index"), 404),
        (ReadOnlyIndexError("static"), 409),
        (NotFittedError("not fitted"), 409),
        (IndexError_("index conflict"), 409),
        (CorruptionError("torn payload"), 500),
        (WalError("unreadable log"), 500),
        (ShutdownError("draining"), 503),
        (ReproError("anything else"), 500),
    ])
    def test_status(self, error, status):
        assert status_for(error) == status

    def test_validation_beats_its_bases(self):
        """ValidationError derives from both SearchError and IndexError_;
        the client mistake (400) must win over the index conflict (409)."""
        assert status_for(ValidationError("x")) == 400

    def test_corruption_beats_index_family(self):
        """CorruptionError is an IndexError_, but it is server-side damage
        (500), not a client conflict (409)."""
        assert status_for(CorruptionError("x")) == 500


class TestPayload:
    def test_shape(self):
        payload = error_payload(UnknownIndexError("no index named 'x'"))
        assert payload == {"error": {
            "type": "UnknownIndexError",
            "message": "no index named 'x'",
            "status": 404,
        }}

    def test_concrete_class_name_travels(self):
        """Clients branch on the taxonomy (e.g. retry ShutdownError), so the
        payload must carry the concrete class, not a family name."""
        assert error_payload(ShutdownError("x"))["error"]["type"] == "ShutdownError"
