"""Batched vs looped query throughput — the multi-query engine.

Not a paper table: this benchmark guards the throughput contract of the
batched search engine (:class:`repro.index.batch_search.BatchSearcher`).
A whole workload answered by ``knn_batch`` must be several times faster than
looping ``ExactSearcher.knn`` over the same queries, while returning results
that match the per-query answers bit for bit.

The headline workload is the SIFT-like vector collection — the scenario the
paper benchmarks against FAISS IndexFlatL2 with mini-batched queries — where
the batched engine must reach at least 3x the looped QPS at batch size >= 64
(asserted at the default benchmark scale; reduced smoke runs use a looser
regression bound).  A high-frequency and a smooth dataset are reported
alongside to show how the advantage varies with pruning behaviour.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.batch_search import BatchSearcher
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex

BATCH_SIZES = (16, 64, 128)
DATASETS = ("SIFT1b", "LenDB", "SALD")
K = 10
REPEATS = 3

#: Required batched/looped QPS ratio on the vector workload at batch >= 64.
FULL_SCALE_SPEEDUP = 3.0
#: Scale at which the full speedup requirement applies (smaller smoke runs
#: only guard against outright regressions).
FULL_SCALE_SERIES = 4000
SMOKE_SPEEDUP = 1.5


def _median_seconds(function, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_batch_throughput(benchmark):
    num_series = bench_num_series()
    num_queries = max(BATCH_SIZES)
    rows = []
    vector_speedups = {}
    representative = None

    for offset, name in enumerate(DATASETS):
        dataset = load_dataset(name, num_series=num_series + num_queries,
                               seed=400 + offset)
        index_set, queries = dataset.split(num_queries, rng=np.random.default_rng(offset))
        sofa = SofaIndex(leaf_size=bench_leaf_size()).build(index_set)
        searcher = ExactSearcher(sofa.tree)
        batcher = BatchSearcher(sofa.tree)
        searcher.knn(queries.values[0], k=K)
        batcher.knn_batch(queries.values[:4], k=K)

        for batch_size in BATCH_SIZES:
            workload = queries.values[:batch_size]
            looped = [searcher.knn(query, k=K) for query in workload]
            batched = batcher.knn_batch(workload, k=K)
            for row, batched_result in enumerate(batched):
                assert np.array_equal(batched_result.indices, looped[row].indices)
                assert np.array_equal(batched_result.distances, looped[row].distances)

            loop_seconds = _median_seconds(
                lambda: [searcher.knn(query, k=K) for query in workload])
            batch_seconds = _median_seconds(lambda: batcher.knn_batch(workload, k=K))
            speedup = loop_seconds / batch_seconds
            rows.append([name, batch_size, batch_size / loop_seconds,
                         batch_size / batch_seconds, speedup])
            if name == "SIFT1b":
                vector_speedups[batch_size] = speedup
            if name == "SIFT1b" and batch_size == max(BATCH_SIZES):
                representative = (batcher, workload)

    report("Batched vs looped exact k-NN throughput "
           f"(k={K}, {num_series} series)",
           format_table(["dataset", "batch", "looped QPS", "batched QPS", "speedup"],
                        rows, float_format="{:.1f}"))

    required = FULL_SCALE_SPEEDUP if num_series >= FULL_SCALE_SERIES else SMOKE_SPEEDUP
    for batch_size, speedup in vector_speedups.items():
        if batch_size >= 64:
            assert speedup >= required, (
                f"batched engine reached only {speedup:.2f}x the looped QPS on the "
                f"vector workload at batch size {batch_size} (required {required}x)"
            )

    batcher, workload = representative
    benchmark(lambda: batcher.knn_batch(workload, k=K))
