"""Figure 7 — index-creation time by method and core count.

The paper reports mean index-construction time over the 17 datasets for FAISS,
MESSI and SOFA at 9, 18 and 36 cores, broken into bin learning, transformation
and tree-building phases, and observes that SOFA pays a summarization overhead
(DFT + learned bins) over MESSI.  This benchmark reproduces that breakdown with
virtual cores replayed from measured single-threaded phase costs.
"""

from __future__ import annotations

import numpy as np

from common import CORE_COUNTS, report

from repro.evaluation.reporting import format_table
from repro.parallel.simulator import assert_single_worker_replay


def test_fig07_index_creation(workload_1nn, benchmark_suite, workload_runner, benchmark):
    rows = []
    for cores in CORE_COUNTS:
        for method in ("FAISS", "MESSI", "SOFA"):
            records = [record for record in workload_1nn.build_records
                       if record.method == method and record.cores == cores]
            rows.append([
                cores, method,
                1000.0 * float(np.mean([record.learn_time for record in records])),
                1000.0 * float(np.mean([record.transform_time for record in records])),
                1000.0 * float(np.mean([record.tree_time for record in records])),
                1000.0 * float(np.mean([record.total_time for record in records])),
            ])

    report("Figure 7 — mean index-creation time (ms) by phase and core count",
           format_table(
               ["cores", "method", "learn bins", "transform", "tree/build", "total"],
               rows, float_format="{:.2f}"))

    def total(method, cores):
        return next(row[5] for row in rows if row[0] == cores and row[1] == method)

    # SOFA pays a summarization overhead over MESSI (learned bins + DFT), as in
    # the paper; both remain the same order of magnitude.
    for cores in CORE_COUNTS:
        assert total("SOFA", cores) >= total("MESSI", cores) * 0.8

    # Sanity anchor of the replay: at one worker the simulated makespan (sum
    # of the recorded per-item costs plus the serial learning phase) must
    # match the measured build wall clock, otherwise every simulated core
    # count above inherits the drift.
    index_set = benchmark_suite["ETHZ"][0]
    anchor = workload_runner.make_method("SOFA").build(index_set, num_workers=1)
    timings = anchor.timings
    simulated = assert_single_worker_replay(
        list(timings.transform_chunk_times) + list(timings.subtree_times),
        serial_time=timings.learn_time, wall_time=timings.wall_time)
    report("Figure 7 — 1-worker replay anchor (ETHZ, SOFA)",
           format_table(["simulated 1-worker (ms)", "measured wall (ms)"],
                        [[1000.0 * simulated, 1000.0 * timings.wall_time]],
                        float_format="{:.2f}"))

    benchmark(lambda: workload_runner.make_method("SOFA").build(index_set))
