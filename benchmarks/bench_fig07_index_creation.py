"""Figure 7 — index-creation time by method and core count.

The paper reports mean index-construction time over the 17 datasets for FAISS,
MESSI and SOFA at 9, 18 and 36 cores, broken into bin learning, transformation
and tree-building phases, and observes that SOFA pays a summarization overhead
(DFT + learned bins) over MESSI.  This benchmark reproduces that breakdown with
virtual cores replayed from measured single-threaded phase costs.
"""

from __future__ import annotations

import numpy as np

from common import CORE_COUNTS, report

from repro.evaluation.reporting import format_table


def test_fig07_index_creation(workload_1nn, benchmark_suite, workload_runner, benchmark):
    rows = []
    for cores in CORE_COUNTS:
        for method in ("FAISS", "MESSI", "SOFA"):
            records = [record for record in workload_1nn.build_records
                       if record.method == method and record.cores == cores]
            rows.append([
                cores, method,
                1000.0 * float(np.mean([record.learn_time for record in records])),
                1000.0 * float(np.mean([record.transform_time for record in records])),
                1000.0 * float(np.mean([record.tree_time for record in records])),
                1000.0 * float(np.mean([record.total_time for record in records])),
            ])

    report("Figure 7 — mean index-creation time (ms) by phase and core count",
           format_table(
               ["cores", "method", "learn bins", "transform", "tree/build", "total"],
               rows, float_format="{:.2f}"))

    def total(method, cores):
        return next(row[5] for row in rows if row[0] == cores and row[1] == method)

    # SOFA pays a summarization overhead over MESSI (learned bins + DFT), as in
    # the paper; both remain the same order of magnitude.
    for cores in CORE_COUNTS:
        assert total("SOFA", cores) >= total("MESSI", cores) * 0.8

    index_set = benchmark_suite["ETHZ"][0]
    benchmark(lambda: workload_runner.make_method("SOFA").build(index_set))
