"""Intra-query parallel exact search — the query engine's latency contract.

Not a paper table: this benchmark guards the promises of the multi-worker
single-query engine in :mod:`repro.index.search`:

* on a multi-core machine at full benchmark scale, ``knn`` with a worker
  pool must answer a single query strictly faster than the 1-worker engine
  (the MESSI-style intra-query parallelism the paper's Figure 10 measures);
* on a single hardware core (where threads cannot help by construction) the
  multi-worker dispatch overhead must stay within a small bound;
* every worker count must return the *same answer*: identical neighbour
  indices and bit-identical distances, asserted at every scale.
"""

from __future__ import annotations

import time

import numpy as np

from common import available_cores, bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

DATASETS = ("LenDB", "SIFT1b")
INDEXES = {"SOFA": SofaIndex, "MESSI": MessiIndex}
K = 10
NUM_QUERIES = 8
REPEATS = 3

#: Scale at which the strictly-faster requirement applies on multi-core
#: hardware (smaller smoke runs only guard overhead and answer identity).
FULL_SCALE_SERIES = 4000
#: On a single hardware core threads cannot beat the sequential engine;
#: bound the acceptable dispatch overhead instead.  Measured 1.16-1.48x at
#: 4000 series and up to 1.61x at the 1500-series smoke scale — the worst
#: case is the cheapest sub-millisecond queries, where the fixed cost of
#: waking the persistent pool dominates the whole query.  The bound is
#: deliberately looser than the build benchmark's (whose work items are
#: thousands of times longer than the dispatch cost): it leaves room for
#: scheduler noise on the worst sub-millisecond case while still catching a
#: regression to per-query thread startup, which costs several times more.
SINGLE_CORE_OVERHEAD = 2.0
PARALLEL_WORKERS = 4
WORKER_COUNTS = (1, 2, PARALLEL_WORKERS)


def _median_query_seconds(index, queries: np.ndarray, num_workers: int) -> float:
    """Median-of-repeats mean per-query latency at one worker count."""
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for query in queries:
            index.knn(query, k=K, num_workers=num_workers)
        times.append((time.perf_counter() - start) / queries.shape[0])
    return float(np.median(times))


def _assert_identical_answers(index, queries: np.ndarray) -> None:
    for query in queries:
        reference = index.knn(query, k=K, num_workers=1)
        for num_workers in WORKER_COUNTS[1:]:
            candidate = index.knn(query, k=K, num_workers=num_workers)
            assert np.array_equal(reference.indices, candidate.indices)
            assert np.array_equal(reference.distances, candidate.distances)


def test_query_parallel(benchmark):
    num_series = bench_num_series()
    full_scale = num_series >= FULL_SCALE_SERIES
    multi_core = available_cores() >= 2

    rows = []
    failures = []
    representative = None
    for offset, name in enumerate(DATASETS):
        dataset = load_dataset(name, num_series=num_series + NUM_QUERIES,
                               seed=700 + offset)
        index_set, queries = dataset.split(NUM_QUERIES,
                                           rng=np.random.default_rng(offset))
        for label, index_cls in INDEXES.items():
            index = index_cls(leaf_size=bench_leaf_size()).build(index_set)
            _assert_identical_answers(index, queries.values)
            # Warm both engines (and the persistent worker pool) before
            # timing, so the gate measures steady-state dispatch, not
            # one-off thread startup.
            for query in queries.values[:2]:
                index.knn(query, k=K, num_workers=1)
                index.knn(query, k=K, num_workers=PARALLEL_WORKERS)

            sequential = _median_query_seconds(index, queries.values, 1)
            parallel = _median_query_seconds(index, queries.values,
                                             PARALLEL_WORKERS)
            ratio = parallel / sequential
            rows.append([f"{name}/{label}", f"{sequential * 1e3:.2f}",
                         f"{parallel * 1e3:.2f}", f"{ratio:.2f}"])

            if full_scale and multi_core:
                if parallel >= sequential:
                    failures.append(
                        f"{name}/{label}: {PARALLEL_WORKERS}-worker knn "
                        f"({parallel * 1e3:.2f} ms) is not faster than "
                        f"1-worker ({sequential * 1e3:.2f} ms)")
            elif ratio > SINGLE_CORE_OVERHEAD:
                failures.append(
                    f"{name}/{label}: {PARALLEL_WORKERS}-worker query overhead "
                    f"{ratio:.2f}x exceeds the "
                    f"{SINGLE_CORE_OVERHEAD:.2f}x bound")
            if representative is None:
                representative = index, queries.values

    cores = available_cores()
    report(f"Intra-query parallel search: 1 vs {PARALLEL_WORKERS} workers, "
           f"k={K} ({num_series} series, leaf {bench_leaf_size()}, "
           f"{cores} hardware core(s))",
           format_table(["index", "x1 ms/query",
                         f"x{PARALLEL_WORKERS} ms/query",
                         f"x{PARALLEL_WORKERS}/x1"], rows))
    assert not failures, "\n".join(failures)

    index, query_values = representative
    benchmark(lambda: index.knn(query_values[0], k=K,
                                num_workers=PARALLEL_WORKERS))
