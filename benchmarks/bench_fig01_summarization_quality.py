"""Figure 1 — PAA vs. Fourier summarization quality and value distributions.

The paper's Figure 1 shows that, on high-frequency datasets, a 16-value PAA
collapses to a flat line while a 16-value Fourier approximation still tracks
the signal (top row), and that the raw value distributions are far from the
N(0, 1) assumption SAX quantization relies on (bottom row).  This benchmark
reports, per dataset, the mean reconstruction error of both summarizations and
the Kolmogorov–Smirnov distance of the value distribution from N(0, 1).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from common import report

from repro.evaluation.reporting import format_table
from repro.transforms.paa import PAA
from repro.transforms.sfa import SFA


def _reconstruction_error(summarization, dataset, sample_rows) -> float:
    errors = []
    for row in sample_rows:
        series = dataset.values[row]
        summary = summarization.transform(series)
        reconstruction = summarization.reconstruct(summary, series.shape[0])
        errors.append(np.linalg.norm(series - reconstruction) / np.sqrt(series.shape[0]))
    return float(np.mean(errors))


def test_fig01_summarization_quality(benchmark_suite, benchmark):
    rows = []
    num_values = 16
    for name, (index_set, _) in benchmark_suite.items():
        sample_rows = np.arange(min(50, index_set.num_series))
        paa = PAA(word_length=num_values).fit(index_set)
        # The Fourier summarization of Figure 1 keeps 16 real values; as in
        # SOFA, the components are selected by variance so that high-frequency
        # structure is retained (the point the figure makes).
        fourier = SFA(word_length=num_values, sample_fraction=1.0).fit(index_set)
        paa_error = _reconstruction_error(paa, index_set, sample_rows)
        fourier_error = _reconstruction_error(fourier, index_set, sample_rows)
        flat_values = index_set.values[sample_rows].ravel()
        ks_statistic = scipy_stats.kstest(flat_values, "norm").statistic
        rows.append([name, paa_error, fourier_error,
                     paa_error / max(fourier_error, 1e-12),
                     ks_statistic, index_set.metadata.get("high_frequency", False)])

    rows.sort(key=lambda row: row[3], reverse=True)
    report("Figure 1 — summarization quality (16 values) and value distributions",
           format_table(
               ["dataset", "PAA err", "FFT err", "PAA/FFT err ratio",
                "KS dist to N(0,1)", "high-freq"],
               rows))

    # The paper's qualitative claim: on the oscillation-dominated datasets the
    # Fourier approximation is much closer to the raw series than PAA, which
    # collapses to a near-flat line.
    by_name = {row[0]: row for row in rows}
    for name in ("LenDB", "SCEDC", "Meier2019JGR"):
        assert by_name[name][3] > 1.2

    index_set = benchmark_suite["LenDB"][0]
    fourier = SFA(word_length=num_values, sample_fraction=1.0).fit(index_set)
    series = index_set.values[0]
    benchmark(lambda: fourier.reconstruct(fourier.transform(series), series.shape[0]))
