"""Figure 11 — 1-NN query time as a function of the leaf size.

The paper sweeps the leaf capacity and finds that query times drop with larger
leaves and plateau, with SOFA (both equi-width and equi-depth binning) below
MESSI throughout.  This benchmark reproduces the sweep on a high-frequency
dataset with scaled-down leaf sizes.
"""

from __future__ import annotations

import numpy as np

from common import report

from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

LEAF_SIZES = (10, 25, 50, 100, 200)


def _mean_query_seconds(index, queries) -> float:
    import time

    times = []
    for query in queries.values:
        start = time.perf_counter()
        index.nearest_neighbor(query)
        times.append(time.perf_counter() - start)
    return float(np.mean(times))


def test_fig11_leaf_size(sweep_suite, benchmark):
    index_set, queries = sweep_suite["SCEDC"]
    rows = []
    curves = {"MESSI": [], "SOFA + EW": [], "SOFA + ED": []}
    for leaf_size in LEAF_SIZES:
        methods = {
            "MESSI": MessiIndex(leaf_size=leaf_size),
            "SOFA + EW": SofaIndex(leaf_size=leaf_size, binning="equi-width"),
            "SOFA + ED": SofaIndex(leaf_size=leaf_size, binning="equi-depth"),
        }
        row = [leaf_size]
        for label, index in methods.items():
            index.build(index_set)
            mean_ms = 1000.0 * _mean_query_seconds(index, queries)
            curves[label].append(mean_ms)
            row.append(mean_ms)
        rows.append(row)

    report("Figure 11 — mean 1-NN query time (ms) by leaf size (SCEDC stand-in)",
           format_table(["leaf size", "MESSI", "SOFA + EW", "SOFA + ED"], rows,
                        float_format="{:.2f}"))

    # Paper shape: both SOFA variants stay below MESSI across the sweep, and
    # the largest leaf size is not slower than the smallest by much (plateau).
    for label in ("SOFA + EW", "SOFA + ED"):
        assert np.mean(curves[label]) <= np.mean(curves["MESSI"])
    for label, values in curves.items():
        assert values[-1] <= 3.0 * values[0] + 1.0

    sofa = SofaIndex(leaf_size=100).build(index_set)
    benchmark(lambda: sofa.nearest_neighbor(queries[0]))
