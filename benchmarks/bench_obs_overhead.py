"""Observability overhead — instrumentation must never tax the hot path.

Not a paper table: this benchmark guards the cost contract of the
observability layer (``repro.obs``).  Serving with metrics *enabled but
idle* (no tracing requested) must stay within a few percent of serving
with the registry kill switch off — the target is <= 1.05x at full
benchmark scale; reduced smoke runs use a looser bound because per-query
time drops into jitter territory.  The cost of *opted-in* per-query
tracing is measured and reported (not gated: a traced query pays for its
span breakdown by design), and two correctness properties ride along:

* answers are bit-identical with metrics on, off, and tracing enabled;
* a traced query's phase spans sum to within 10% of its measured wall
  time (the accounting contract from ``docs/observability.md``).
"""

from __future__ import annotations

import time

import numpy as np

from common import (
    bench_leaf_size,
    bench_num_series,
    record_result,
    report,
)

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.sofa import SofaIndex
from repro.obs.metrics import get_registry
from repro.serve.app import SearchApp
from repro.serve.config import ServeConfig

K = 10
NUM_QUERIES = 64
REPEATS = 5

#: Required enabled-but-idle/disabled ratio at full benchmark scale.
FULL_SCALE_OVERHEAD = 1.05
#: Scale at which the full gate applies; below it (CI smoke runs) queries
#: take tens of microseconds and scheduler jitter would dominate a 5% gate.
FULL_SCALE_SERIES = 4000
SMOKE_OVERHEAD = 1.35


def _median_seconds(function, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_obs_overhead(benchmark):
    num_series = bench_num_series()
    dataset = load_dataset("LenDB", num_series=num_series + NUM_QUERIES,
                           seed=700)
    index_set, queries = dataset.split(NUM_QUERIES,
                                       rng=np.random.default_rng(7))
    engine = SofaIndex(leaf_size=bench_leaf_size()).build(index_set)

    # batching=False serves each request with a direct engine call: the
    # micro-batch window wait would otherwise swamp the nanosecond-scale
    # cost difference this benchmark exists to measure.
    app = SearchApp(ServeConfig(batching=False, num_workers=1))
    app.add_index("bench", engine)
    workload = [list(row) for row in queries.values]

    def serve_all(trace: bool = False):
        return [app.knn("bench", query, k=K, trace=trace)
                for query in workload]

    registry = get_registry()
    was_enabled = registry.enabled
    try:
        # Warm both code paths (index caches, per-thread metric cells).
        registry.set_enabled(True)
        baseline = serve_all()
        traced = serve_all(trace=True)
        registry.set_enabled(False)
        disabled = serve_all()

        for on, off, tr in zip(baseline, traced, disabled):
            assert on["ids"] == off["ids"] == tr["ids"]
            assert on["distances"] == off["distances"] == tr["distances"]

        # Accounting contract: phases partition the traced query's wall.
        for payload in traced:
            wall = payload["wall_time_s"]
            phase_sum = payload["trace"]["phase_seconds"]
            assert abs(wall - phase_sum) <= max(0.1 * wall, 1e-3), (
                f"trace phases sum to {phase_sum:.6f}s against a wall time "
                f"of {wall:.6f}s (> 10% apart)")

        registry.set_enabled(False)
        disabled_seconds = _median_seconds(serve_all)
        registry.set_enabled(True)
        enabled_seconds = _median_seconds(serve_all)
        traced_seconds = _median_seconds(lambda: serve_all(trace=True))
    finally:
        registry.set_enabled(was_enabled)

    idle_ratio = enabled_seconds / disabled_seconds
    tracing_ratio = traced_seconds / disabled_seconds
    report(
        f"Observability overhead (k={K}, {num_series} series, "
        f"{NUM_QUERIES} queries)",
        format_table(
            ["mode", "seconds/workload", "vs disabled"],
            [["metrics disabled", disabled_seconds, 1.0],
             ["metrics enabled (idle)", enabled_seconds, idle_ratio],
             ["tracing enabled", traced_seconds, tracing_ratio]],
            float_format="{:.4f}"))
    record_result(
        "obs_overhead",
        num_series=num_series,
        num_queries=NUM_QUERIES,
        disabled_seconds=disabled_seconds,
        enabled_seconds=enabled_seconds,
        traced_seconds=traced_seconds,
        idle_overhead_ratio=idle_ratio,
        tracing_overhead_ratio=tracing_ratio,
        qps_enabled=NUM_QUERIES / enabled_seconds,
    )

    required = (FULL_SCALE_OVERHEAD if num_series >= FULL_SCALE_SERIES
                else SMOKE_OVERHEAD)
    assert idle_ratio <= required, (
        f"idle instrumentation costs {idle_ratio:.3f}x the disabled "
        f"baseline (gate {required}x at {num_series} series)")

    registry.set_enabled(True)
    try:
        benchmark(serve_all)
    finally:
        registry.set_enabled(was_enabled)
