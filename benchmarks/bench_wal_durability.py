"""Write-ahead-log durability: logging overhead and replay throughput.

Not a paper table: this benchmark guards the durability contract of
:mod:`repro.index.wal`.  Streaming ingest with a WAL attached (``fsync`` in
its batched mode) must sustain at least **half** the throughput of the same
ingest without a log — the log is a sequential append of already-normalized
rows, so its cost must stay a constant factor, not a cliff.  Crash recovery
must replay the log over the last snapshot at full-scale speed (tens of
thousands of rows per second); reduced smoke runs use looser bounds because
fixed per-call overhead dominates tiny ingests.

Correctness is asserted at every scale: the recovered index must answer a
query batch bit-identically to the index the "crashed" process held at its
last acked write.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.dynamic import DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.persistence import load_dynamic

K = 10
NUM_QUERIES = 8
#: Streaming ingest arrives in batches of this many series.
INGEST_BATCH = 64
#: Fraction of the collection that arrives through the ingest path.
DELTA_FRACTION = 0.5

#: Gates at the default benchmark scale (4000 series); smoke runs keep the
#: same shape of assertion with slack for fixed overheads.
FULL_SCALE_SERIES = 4000
FULL_WAL_RATIO = 0.5
SMOKE_WAL_RATIO = 0.25
FULL_REPLAY_ROWS_PER_S = 50_000.0
SMOKE_REPLAY_ROWS_PER_S = 2_000.0


def _ingest(dynamic, arriving: np.ndarray) -> float:
    start = time.perf_counter()
    for block_start in range(0, arriving.shape[0], INGEST_BATCH):
        dynamic.insert_batch(arriving[block_start:block_start + INGEST_BATCH])
    return time.perf_counter() - start


def test_wal_overhead_and_replay(benchmark, tmp_path):
    num_series = bench_num_series()
    full_scale = num_series >= FULL_SCALE_SERIES
    min_ratio = FULL_WAL_RATIO if full_scale else SMOKE_WAL_RATIO
    min_replay = (FULL_REPLAY_ROWS_PER_S if full_scale
                  else SMOKE_REPLAY_ROWS_PER_S)

    num_delta = max(INGEST_BATCH, int(round(DELTA_FRACTION * num_series)))
    num_base = max(16, num_series - num_delta)
    dataset = load_dataset("LenDB", num_series=num_base + num_delta
                           + NUM_QUERIES, seed=900)
    index_set, queries = dataset.split(NUM_QUERIES,
                                       rng=np.random.default_rng(9))
    base = index_set.values[:num_base]
    arriving = index_set.values[num_base:]

    index = MessiIndex(leaf_size=bench_leaf_size()).build(base, num_workers=1)

    # --- baseline: ingest with no log attached.
    bare = index.dynamic()
    bare_seconds = _ingest(bare, arriving)
    bare_rate = arriving.shape[0] / bare_seconds

    # --- same ingest, write-ahead logged (batched fsync), from a snapshot.
    snapshot_dir = tmp_path / "snapshot"
    wal_dir = tmp_path / "wal"
    logged = index.dynamic(wal_dir=wal_dir, wal_fsync="batch")
    logged.save(snapshot_dir)
    logged_seconds = _ingest(logged, arriving)
    logged_rate = arriving.shape[0] / logged_seconds
    logged.delete(0)
    expected = logged.knn_batch(queries.values, k=K)
    logged.close()

    # --- crash recovery: reload the snapshot, replay the log.
    load_seconds = min(
        _timed(lambda: load_dynamic(snapshot_dir)) for _ in range(3))
    recover_seconds = _timed(
        lambda: DynamicIndex.recover(snapshot_dir, wal_dir))
    replay_seconds = max(recover_seconds - load_seconds, 1e-9)
    replay_rate = arriving.shape[0] / replay_seconds

    recovered = DynamicIndex.recover(snapshot_dir, wal_dir)
    observed = recovered.knn_batch(queries.values, k=K)
    for want, got in zip(expected, observed):
        assert np.array_equal(want.indices, got.indices)
        assert np.array_equal(want.distances, got.distances)
    recovered.close()

    ratio = logged_rate / bare_rate
    table = format_table(
        ["mode", "insert rows/s", "vs WAL-off", "replay rows/s"],
        [["WAL off", f"{bare_rate:,.0f}", "1.00x", "-"],
         ["WAL on (batch)", f"{logged_rate:,.0f}", f"{ratio:.2f}x",
          f"{replay_rate:,.0f}"]])
    report(f"WAL durability: logged ingest and crash replay "
           f"({arriving.shape[0]} rows over {num_base} base series, "
           f"leaf {bench_leaf_size()})", table)

    benchmark(lambda: DynamicIndex.recover(snapshot_dir, wal_dir).close())

    assert ratio >= min_ratio, (
        f"write-ahead logging cut ingest throughput to {ratio:.2f}x of the "
        f"unlogged rate (allowed: >= {min_ratio:.2f}x at {num_series} series)"
    )
    assert replay_rate >= min_replay, (
        f"WAL replay ran at {replay_rate:,.0f} rows/s "
        f"(required: >= {min_replay:,.0f} at {num_series} series)"
    )


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start
