"""Figure 14 — TLB of all five ablation variants across configurations.

Figure 14 plots the TLB of iSAX and the four SFA variants (equi-depth /
equi-width, with and without variance-based selection) over the configuration
grid on both benchmarks and shows SFA EW +VAR on top.  This benchmark reports
the mean TLB of all five variants over a grid of alphabet sizes on the
UCR-like suite.
"""

from __future__ import annotations

import numpy as np

from common import report

from repro.datasets.ucr import generate_ucr_like_suite
from repro.evaluation.reporting import format_table
from repro.evaluation.tlb import ABLATION_METHODS, mean_tlb_table, tlb_study

ALPHABETS = (8, 32, 128)


def test_fig14_tlb_all_variants(benchmark):
    suite = generate_ucr_like_suite(num_datasets=14, train_size=100, test_size=12)
    datasets = {entry.name: (entry.train, entry.test) for entry in suite}
    records = tlb_study(datasets, alphabet_sizes=ALPHABETS, methods=ABLATION_METHODS,
                        word_length=16, max_pairs_per_query=50)
    table = mean_tlb_table(records)

    rows = []
    overall = {}
    for method in ABLATION_METHODS:
        values = [table[method][alphabet] for alphabet in ALPHABETS]
        overall[method] = float(np.mean(values))
        rows.append([method] + values + [overall[method]])
    rows.sort(key=lambda row: row[-1], reverse=True)

    report("Figure 14 — mean TLB of all five variants (UCR-like suite)",
           format_table(["method"] + [str(a) for a in ALPHABETS] + ["mean"], rows))

    # Paper shape: every SFA variant beats iSAX, and variance selection does
    # not hurt the equi-width variant.
    assert all(overall[method] > overall["iSAX"] for method in ABLATION_METHODS
               if method != "iSAX")
    assert overall["SFA EW +VAR"] >= overall["SFA EW"] - 0.02

    benchmark(lambda: mean_tlb_table(records))
