"""Dynamic ingest: delta-query overhead and insert throughput.

Not a paper table: this benchmark guards the serving contract of
:mod:`repro.index.dynamic`.  A dynamic index carrying a **10 % delta**
(buffered inserts that have not been compacted yet) must answer query batches
at most **2x slower** than the same index after ``compact()`` merged the
delta into the tree (asserted at the default benchmark scale of 4000 series;
reduced smoke runs use a looser regression bound).  Insert throughput —
series buffered per second through the vectorized summarization, in
streaming-sized batches — and the compaction cost are reported alongside.

Correctness is asserted at every scale: the answers over *tree ∪ delta* must
be bit-identical to the answers after compaction (which is itself a scratch
rebuild on the union, with unchanged row ids when nothing was deleted).
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

DATASETS = ("LenDB", "SIFT1b")
INDEXES = {"SOFA": SofaIndex, "MESSI": MessiIndex}
K = 10
NUM_QUERIES = 8
QUERY_REPEATS = 5
#: Streaming ingest arrives in batches of this many series.
INGEST_BATCH = 64
#: Fraction of the collection that arrives as the delta.
DELTA_FRACTION = 0.10

#: Maximum allowed (delta query time) / (compacted query time) at the full
#: benchmark scale; smaller smoke runs only guard against outright
#: regressions (fixed per-query engine overhead dominates tiny collections).
FULL_SCALE_OVERHEAD = 2.0
FULL_SCALE_SERIES = 4000
SMOKE_OVERHEAD = 3.0


def _median_seconds(function, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_dynamic_ingest_overhead(benchmark):
    num_series = bench_num_series()
    allowed = (FULL_SCALE_OVERHEAD if num_series >= FULL_SCALE_SERIES
               else SMOKE_OVERHEAD)
    num_delta = max(1, int(round(DELTA_FRACTION * num_series)))
    num_base = num_series - num_delta
    rows = []
    overheads = {}
    representative = None
    for offset, name in enumerate(DATASETS):
        dataset = load_dataset(name, num_series=num_series + NUM_QUERIES,
                               seed=700 + offset)
        index_set, queries = dataset.split(NUM_QUERIES,
                                           rng=np.random.default_rng(offset))
        base = index_set.values[:num_base]
        arriving = index_set.values[num_base:]
        for label, index_cls in INDEXES.items():
            index = index_cls(leaf_size=bench_leaf_size()).build(
                base, num_workers=1)
            dynamic = index.dynamic()

            # --- streaming ingest: batches through the vectorized write path.
            start = time.perf_counter()
            for block_start in range(0, arriving.shape[0], INGEST_BATCH):
                dynamic.insert_batch(arriving[block_start:block_start
                                              + INGEST_BATCH])
            insert_seconds = time.perf_counter() - start
            throughput = arriving.shape[0] / insert_seconds

            # --- query with the 10% delta pending.
            delta_answers = dynamic.knn_batch(queries.values, k=K)
            delta_seconds = _median_seconds(
                lambda: dynamic.knn_batch(queries.values, k=K), QUERY_REPEATS)

            # --- compact (the parallel rebuild on the union) and re-query.
            start = time.perf_counter()
            dynamic.compact(num_workers=1)
            compact_seconds = time.perf_counter() - start
            compacted_answers = dynamic.knn_batch(queries.values, k=K)
            compacted_seconds = _median_seconds(
                lambda: dynamic.knn_batch(queries.values, k=K), QUERY_REPEATS)

            # Nothing was deleted, so row ids survive compaction unchanged
            # and the pre-compaction answers must match bit for bit.
            for before, after in zip(delta_answers, compacted_answers):
                assert np.array_equal(before.indices, after.indices)
                assert np.array_equal(before.distances, after.distances)

            overhead = delta_seconds / compacted_seconds
            overheads[(name, label)] = overhead
            rows.append([f"{name}/{label}", f"{throughput:,.0f}",
                         f"{1000 * delta_seconds:.1f}",
                         f"{1000 * compacted_seconds:.1f}",
                         f"{overhead:.2f}x",
                         f"{1000 * compact_seconds:.0f}"])
            if representative is None:
                representative = (dynamic, queries.values)

    table = format_table(
        ["index", "insert rows/s", f"q({NUM_QUERIES}) delta ms",
         f"q({NUM_QUERIES}) compacted ms", "overhead", "compact ms"], rows)
    report(f"Dynamic ingest: {int(100 * DELTA_FRACTION)}% delta overhead "
           f"({num_series} series, k={K}, leaf {bench_leaf_size()})", table)
    if representative is not None:
        served, query_block = representative
        benchmark(lambda: served.knn_batch(query_block, k=K))

    for (name, label), overhead in overheads.items():
        assert overhead <= allowed, (
            f"querying {name}/{label} with a {int(100 * DELTA_FRACTION)}% "
            f"delta is {overhead:.2f}x the compacted query time "
            f"(allowed: {allowed:.1f}x at {num_series} series)"
        )
