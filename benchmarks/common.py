"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
measured numbers are rendered as plain-text tables; because pytest captures
stdout, the tables are collected here and emitted from a
``pytest_terminal_summary`` hook (see ``conftest.py``) so they always appear in
the benchmark transcript (``bench_output.txt``).

Scale knobs: the environment variables ``REPRO_BENCH_SERIES`` and
``REPRO_BENCH_QUERIES`` control how many series per dataset and how many
queries per dataset the harness uses (defaults keep the whole suite at a few
minutes on a laptop).  Absolute times are therefore not comparable with the
paper's 100M-series server runs; the *relative* behaviour (who wins, by how
much, where crossovers happen) is what the harness reproduces.
"""

from __future__ import annotations

import os

#: Registry of (title, text) report blocks printed in the terminal summary.
_REPORTS: list[tuple[str, str]] = []


def available_cores() -> int:
    """Hardware cores usable by this process (affinity-aware).

    Shared by every benchmark that switches between multi-core speedup gates
    and single-core overhead bounds, so all gates agree about the machine.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def report(title: str, text: str) -> None:
    """Queue a formatted table for the end-of-run benchmark report."""
    _REPORTS.append((title, text))


def collected_reports() -> list[tuple[str, str]]:
    return list(_REPORTS)


def bench_num_series() -> int:
    """Number of series per benchmark dataset (paper: 0.5M - 100M, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_SERIES", "4000"))


def bench_num_queries() -> int:
    """Number of queries per dataset (paper: 100, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", "10"))


def bench_leaf_size() -> int:
    """Leaf capacity used by the tree indexes (paper: 20000, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_LEAF_SIZE", "100"))


#: Core counts simulated in the scaling experiments (as in the paper).
CORE_COUNTS = (9, 18, 36)

#: The subset of datasets used by the more expensive sweeps (k-NN, leaf size,
#: sampling) so the full harness stays laptop-sized; the 1-NN and TLB studies
#: cover all 17 datasets.
SWEEP_DATASETS = ("LenDB", "SCEDC", "ETHZ", "SALD", "SIFT1b", "Astro")
