"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
measured numbers are rendered as plain-text tables; because pytest captures
stdout, the tables are collected here and emitted from a
``pytest_terminal_summary`` hook (see ``conftest.py``) so they always appear in
the benchmark transcript (``bench_output.txt``).

Scale knobs: the environment variables ``REPRO_BENCH_SERIES`` and
``REPRO_BENCH_QUERIES`` control how many series per dataset and how many
queries per dataset the harness uses (defaults keep the whole suite at a few
minutes on a laptop).  Absolute times are therefore not comparable with the
paper's 100M-series server runs; the *relative* behaviour (who wins, by how
much, where crossovers happen) is what the harness reproduces.

Machine-readable output: ``--bench-json PATH`` (or the ``REPRO_BENCH_JSON``
environment variable) writes every metric queued through
:func:`record_result` as one JSON document, which is what the CI smoke jobs
archive as ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import time

#: Registry of (title, text) report blocks printed in the terminal summary.
_REPORTS: list[tuple[str, str]] = []

#: Registry of machine-readable per-benchmark metric dicts (--bench-json).
_RESULTS: list[dict] = []


def available_cores() -> int:
    """Hardware cores usable by this process (affinity-aware).

    Shared by every benchmark that switches between multi-core speedup gates
    and single-core overhead bounds, so all gates agree about the machine.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def report(title: str, text: str) -> None:
    """Queue a formatted table for the end-of-run benchmark report."""
    _REPORTS.append((title, text))


def collected_reports() -> list[tuple[str, str]]:
    return list(_REPORTS)


def record_result(name: str, **metrics) -> None:
    """Queue one benchmark's machine-readable metrics for ``--bench-json``.

    ``metrics`` values must be JSON-serializable scalars (numbers, strings,
    booleans); each call becomes one entry in the written document's
    ``results`` list.
    """
    _RESULTS.append({"benchmark": name, "metrics": dict(metrics)})


def collected_results() -> list[dict]:
    return list(_RESULTS)


def write_json_results(path: str) -> None:
    """Write every recorded result (plus run context) as one JSON document.

    The document is self-describing — the scale knobs in effect and the
    machine it ran on ride along — so a CI artifact can be compared across
    runs without reconstructing the environment from job logs.
    """
    payload = {
        "schema": "repro-bench/1",
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cores": available_cores(),
        },
        "scale": {
            "num_series": bench_num_series(),
            "num_queries": bench_num_queries(),
            "leaf_size": bench_leaf_size(),
            "num_workers_env": os.environ.get("REPRO_NUM_WORKERS"),
        },
        "results": collected_results(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def bench_num_series() -> int:
    """Number of series per benchmark dataset (paper: 0.5M - 100M, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_SERIES", "4000"))


def bench_num_queries() -> int:
    """Number of queries per dataset (paper: 100, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", "10"))


def bench_leaf_size() -> int:
    """Leaf capacity used by the tree indexes (paper: 20000, scaled down)."""
    return int(os.environ.get("REPRO_BENCH_LEAF_SIZE", "100"))


#: Core counts simulated in the scaling experiments (as in the paper).
CORE_COUNTS = (9, 18, 36)

#: The subset of datasets used by the more expensive sweeps (k-NN, leaf size,
#: sampling) so the full harness stays laptop-sized; the 1-NN and TLB studies
#: cover all 17 datasets.
SWEEP_DATASETS = ("LenDB", "SCEDC", "ETHZ", "SALD", "SIFT1b", "Astro")
