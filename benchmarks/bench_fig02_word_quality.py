"""Figures 2-4 — SAX versus SFA word formation.

Figure 2 of the paper contrasts the staircase-shaped SAX approximation with the
smooth Fourier envelope of SFA for word lengths 4, 8 and 12.  This benchmark
reports, for each word length, the mean reconstruction error of the numeric
summaries behind both words and the mean symbolic lower bound between random
query/candidate pairs (higher bound = tighter word).
"""

from __future__ import annotations

import numpy as np

from common import report

from repro.core.distance import euclidean
from repro.evaluation.reporting import format_table
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


def _mean_word_bound(summarization, dataset, num_pairs: int = 100) -> float:
    rng = np.random.default_rng(0)
    words = summarization.words(dataset)
    bounds = []
    for _ in range(num_pairs):
        query_row, candidate_row = rng.integers(0, dataset.num_series, size=2)
        summary = summarization.transform(dataset.values[query_row])
        bound = np.sqrt(summarization.mindist(summary, words[candidate_row]))
        true = euclidean(dataset.values[query_row], dataset.values[candidate_row])
        if true > 0:
            bounds.append(bound / true)
    return float(np.mean(bounds))


def test_fig02_sax_vs_sfa_words(benchmark_suite, benchmark):
    index_set = benchmark_suite["LenDB"][0]
    rows = []
    for word_length in (4, 8, 12, 16):
        sax = SAX(word_length=word_length, alphabet_size=8).fit(index_set)
        sfa = SFA(word_length=word_length, alphabet_size=8,
                  sample_fraction=1.0).fit(index_set)
        series = index_set.values[0]
        sax_error = float(np.linalg.norm(
            series - sax.reconstruct(sax.transform(series), series.shape[0])))
        sfa_error = float(np.linalg.norm(
            series - sfa.reconstruct(sfa.transform(series), series.shape[0])))
        rows.append([word_length,
                     sax.word_to_string(sax.word(series)),
                     sfa.word_to_string(sfa.word(series)),
                     sax_error, sfa_error,
                     _mean_word_bound(sax, index_set),
                     _mean_word_bound(sfa, index_set)])

    report("Figure 2 — SAX vs SFA words on a high-frequency series (alphabet 8)",
           format_table(
               ["l", "SAX word", "SFA word", "SAX recon err", "SFA recon err",
                "SAX TLB", "SFA TLB"],
               rows))

    # SFA's Fourier envelope approximates the high-frequency series better than
    # the SAX staircase at every word length, and its words bound tighter.
    assert all(row[4] <= row[3] for row in rows)
    assert all(row[6] >= row[5] for row in rows)

    sfa = SFA(word_length=16, alphabet_size=8, sample_fraction=1.0).fit(index_set)
    benchmark(lambda: sfa.word(index_set.values[0]))
