"""Figure 15 — critical-difference analysis of the TLB ranks.

The paper compares the five summarization variants with a critical-difference
diagram (average ranks, Wilcoxon–Holm cliques at alpha = 0.05) and finds
SFA EW +VAR significantly ahead and iSAX last on both benchmarks.  This
benchmark reproduces the rank analysis on the UCR-like suite.
"""

from __future__ import annotations

from common import report

from repro.datasets.ucr import generate_ucr_like_suite
from repro.evaluation.ranks import critical_difference
from repro.evaluation.reporting import format_table
from repro.evaluation.tlb import ABLATION_METHODS, tlb_study


def test_fig15_critical_difference(benchmark):
    suite = generate_ucr_like_suite(num_datasets=21, train_size=100, test_size=12)
    datasets = {entry.name: (entry.train, entry.test) for entry in suite}
    records = tlb_study(datasets, alphabet_sizes=(256,), methods=ABLATION_METHODS,
                        word_length=16, max_pairs_per_query=50)

    scores: dict[str, list[float]] = {method: [] for method in ABLATION_METHODS}
    for record in records:
        scores[record.method].append(record.tlb)

    result = critical_difference(scores, alpha=0.05)
    rows = [[method, result.average_ranks[method]] for method in result.ordered_methods()]
    clique_text = "; ".join(" ~ ".join(clique) for clique in result.cliques) or "(none)"
    report("Figure 15 — average TLB ranks (alphabet 256, lower rank is better); "
           f"Friedman p = {result.friedman_pvalue:.2e}; cliques: {clique_text}",
           format_table(["method", "average rank"], rows))

    # Paper shape: an SFA variant ranks first, iSAX ranks last, and the
    # Friedman test finds a significant difference.
    ordered = result.ordered_methods()
    assert ordered[0].startswith("SFA")
    assert ordered[-1] == "iSAX"
    assert result.friedman_pvalue < 0.05

    benchmark(lambda: critical_difference(scores, alpha=0.05))
