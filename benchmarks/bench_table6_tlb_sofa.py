"""Table VI — mean TLB on the 17 SOFA benchmark datasets by alphabet size.

Same protocol as Table V but on the paper's own benchmark datasets: the
indexing split learns the summarization and the query split probes it.  The
paper finds SFA (equi-width, variance selection) ahead of iSAX at every
alphabet size, with equi-width overtaking equi-depth for larger alphabets.
"""

from __future__ import annotations

from common import report

from repro.evaluation.reporting import format_table
from repro.evaluation.tlb import evaluate_tlb, make_ablation_method, mean_tlb_table, tlb_study

ALPHABETS = (4, 16, 64, 256)
METHODS = ("SFA ED +VAR", "SFA EW +VAR", "iSAX")


def test_table6_tlb_sofa_datasets(benchmark_suite, benchmark):
    datasets = {name: (index_set, queries)
                for name, (index_set, queries) in benchmark_suite.items()}
    records = tlb_study(datasets, alphabet_sizes=ALPHABETS, methods=METHODS,
                        word_length=16, max_pairs_per_query=40)
    table = mean_tlb_table(records)

    rows = [[method] + [table[method][alphabet] for alphabet in ALPHABETS]
            for method in METHODS]
    report("Table VI — mean TLB on the 17 SOFA benchmark datasets by alphabet size",
           format_table(["method"] + [str(alphabet) for alphabet in ALPHABETS], rows))

    # Paper shape: the SFA variants beat iSAX at every alphabet size and the
    # equi-width variant is at least on par with equi-depth at alphabet 256.
    for alphabet in ALPHABETS:
        assert table["SFA EW +VAR"][alphabet] > table["iSAX"][alphabet]
    assert table["SFA EW +VAR"][256] >= table["SFA ED +VAR"][256] - 0.02

    name, (index_set, queries) = next(iter(benchmark_suite.items()))
    summarization = make_ablation_method("iSAX", word_length=16, alphabet_size=64)
    benchmark(lambda: evaluate_tlb(summarization, index_set, queries,
                                   max_pairs_per_query=20))
