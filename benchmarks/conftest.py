"""Session fixtures shared by all benchmark modules.

The expensive work (building every index on every dataset and answering the
query workload) happens once per session in the fixtures below; the individual
benchmark modules then slice the cached results into the paper's tables and
figures and use ``pytest-benchmark`` to time one representative operation each.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))

from common import (  # noqa: E402
    CORE_COUNTS,
    SWEEP_DATASETS,
    bench_leaf_size,
    bench_num_queries,
    bench_num_series,
    collected_reports,
    write_json_results,
)

from repro.datasets.registry import dataset_names, load_dataset  # noqa: E402
from repro.evaluation.workloads import WorkloadRunner  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=os.environ.get("REPRO_BENCH_JSON"),
        metavar="PATH",
        help="write machine-readable benchmark results to PATH as JSON "
             "(defaults to $REPRO_BENCH_JSON when set)")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every queued paper-style table after the benchmark run."""
    del exitstatus
    json_path = config.getoption("--bench-json")
    if json_path:
        write_json_results(json_path)
        terminalreporter.write_line(
            f"benchmark JSON results written to {json_path}")
    reports = collected_reports()
    if not reports:
        return
    terminalreporter.section("paper-style benchmark reports")
    for title, text in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def benchmark_suite():
    """All 17 datasets (scaled) split into index and query sets."""
    suite = {}
    for offset, name in enumerate(dataset_names()):
        dataset = load_dataset(name, num_series=bench_num_series(), seed=100 + offset)
        suite[name] = dataset.split(bench_num_queries(), rng=np.random.default_rng(offset))
    return suite


@pytest.fixture(scope="session")
def sweep_suite(benchmark_suite):
    """The smaller dataset subset used by parameter sweeps."""
    return {name: benchmark_suite[name] for name in SWEEP_DATASETS}


@pytest.fixture(scope="session")
def workload_runner():
    return WorkloadRunner(core_counts=CORE_COUNTS, leaf_size=bench_leaf_size())


@pytest.fixture(scope="session")
def workload_1nn(benchmark_suite, workload_runner):
    """The Table II workload: every method, every dataset, 1-NN, all core counts."""
    return workload_runner.run_suite(benchmark_suite, k_values=(1,))


@pytest.fixture(scope="session")
def workload_knn(sweep_suite, workload_runner):
    """The Table III / Figure 9 workload: k sweep on the sweep subset."""
    return workload_runner.run_suite(sweep_suite, methods=("FAISS", "MESSI", "SOFA"),
                                     k_values=(1, 3, 5, 10, 20, 50))
