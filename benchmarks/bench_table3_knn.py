"""Table III and Figure 9 — k-NN query times at 36 cores.

The paper reports median query times for k ∈ {1, 3, 5, 10, 20, 50} on 36 cores
and observes that SOFA stays fastest and that all methods scale gracefully with
k.  This benchmark reproduces the same sweep on the sweep-dataset subset.
"""

from __future__ import annotations

from common import report

from repro.evaluation.reporting import format_table
from repro.index.sofa import SofaIndex

K_VALUES = (1, 3, 5, 10, 20, 50)


def test_table3_knn(workload_knn, sweep_suite, benchmark):
    cores = 36
    table = {}
    for method in ("FAISS", "MESSI", "SOFA"):
        for k in K_VALUES:
            timings = workload_knn.mean_query_times(method, cores, k=k)
            table[(method, k)] = timings.as_milliseconds()["median_ms"]

    rows = [[method] + [table[(method, k)] for k in K_VALUES]
            for method in ("FAISS", "MESSI", "SOFA")]
    report("Table III / Figure 9 — median k-NN query times (ms, 36 cores)",
           format_table(["method"] + [f"{k}-NN" for k in K_VALUES], rows,
                        float_format="{:.2f}"))

    # Paper shape: SOFA is fastest for every k, and no method blows up with k
    # (50-NN stays within a small factor of 1-NN).
    for k in K_VALUES:
        assert table[("SOFA", k)] <= table[("MESSI", k)]
    for method in ("FAISS", "MESSI", "SOFA"):
        assert table[(method, 50)] <= 25.0 * max(table[(method, 1)], 1e-3)

    index_set, queries = sweep_suite["LenDB"]
    sofa = SofaIndex(leaf_size=100).build(index_set)
    benchmark(lambda: sofa.knn(queries[0], k=10))
