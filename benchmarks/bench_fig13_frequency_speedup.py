"""Figure 13 — selected Fourier-coefficient index versus speed-up over MESSI.

The paper correlates, per dataset, the mean index of the Fourier coefficients
SOFA selects with SOFA's speed-up over MESSI and reports a positive Pearson
correlation (0.51): the higher the frequencies that carry the variance, the
larger SOFA's advantage.  This benchmark sweeps a synthetic family whose
high-frequency energy fraction is the only knob and reproduces the correlation.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import stats as scipy_stats

from common import bench_leaf_size, bench_num_queries, report

from repro.core.series import Dataset
from repro.datasets.synthetic import clustered, mixed_frequency
from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex


def _mean_query_seconds(index, queries) -> float:
    times = []
    for query in queries.values:
        start = time.perf_counter()
        index.nearest_neighbor(query)
        times.append(time.perf_counter() - start)
    return float(np.mean(times))


def test_fig13_frequency_vs_speedup(benchmark):
    fractions = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
    rows = []
    mean_indices = []
    speedups = []
    for offset, fraction in enumerate(fractions):
        values = clustered(mixed_frequency, 900, 256, num_clusters=45,
                           within_cluster_noise=0.25, seed=300 + offset,
                           high_energy_fraction=fraction)
        dataset = Dataset(values, name=f"mix-{fraction:.2f}")
        index_set, queries = dataset.split(bench_num_queries(),
                                           rng=np.random.default_rng(offset))
        sofa = SofaIndex(leaf_size=bench_leaf_size(), sample_fraction=1.0).build(index_set)
        messi = MessiIndex(leaf_size=bench_leaf_size()).build(index_set)
        sofa_time = _mean_query_seconds(sofa, queries)
        messi_time = _mean_query_seconds(messi, queries)
        speedup = messi_time / max(sofa_time, 1e-9)
        mean_index = sofa.mean_selected_coefficient_index()
        mean_indices.append(mean_index)
        speedups.append(speedup)
        rows.append([fraction, mean_index, speedup])

    correlation = float(scipy_stats.pearsonr(mean_indices, speedups).statistic)
    report("Figure 13 — mean selected DFT coefficient vs speed-up over MESSI "
           f"(Pearson r = {correlation:.2f})",
           format_table(["high-freq energy fraction", "mean selected coeff",
                         "speed-up over MESSI"], rows))

    # Paper shape: the correlation is clearly positive (the paper reports 0.51).
    assert correlation > 0.3
    # And the highest-frequency configuration is faster than the lowest.
    assert speedups[-1] > speedups[0]

    benchmark(lambda: scipy_stats.pearsonr(mean_indices, speedups).statistic)
