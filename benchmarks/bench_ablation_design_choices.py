"""Ablation — the design choices that make SOFA fast.

DESIGN.md calls out three SOFA design choices on top of the MESSI tree:
variance-based coefficient selection, equi-width (vs. equi-depth) learned
binning, and the learned quantization itself (vs. SAX's fixed Gaussian bins).
This benchmark removes them one at a time and measures how much pruning work
(exact distance computations per query) each variant needs on a high-frequency
dataset — the mechanism behind the speed-ups of Figure 12.
"""

from __future__ import annotations

import numpy as np

from common import bench_leaf_size, report

from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex


def _mean_exact_distances(index, queries) -> float:
    return float(np.mean([index.nearest_neighbor(query).stats.exact_distances
                          for query in queries.values]))


def test_ablation_design_choices(sweep_suite, benchmark):
    index_set, queries = sweep_suite["LenDB"]
    variants = {
        "SOFA (EW + VAR)": SofaIndex(leaf_size=bench_leaf_size()),
        "SOFA EW, no VAR": SofaIndex(leaf_size=bench_leaf_size(), variance_selection=False),
        "SOFA ED + VAR": SofaIndex(leaf_size=bench_leaf_size(), binning="equi-depth"),
        "MESSI (SAX)": MessiIndex(leaf_size=bench_leaf_size()),
    }
    rows = []
    work = {}
    for label, index in variants.items():
        index.build(index_set)
        exact = _mean_exact_distances(index, queries)
        work[label] = exact
        rows.append([label, exact, 100.0 * exact / index_set.num_series])

    rows.sort(key=lambda row: row[1])
    report("Design-choice ablation — exact distance computations per 1-NN query "
           "(LenDB stand-in, lower is better)",
           format_table(["variant", "exact distances / query", "% of dataset"],
                        rows, float_format="{:.1f}"))

    # The full SOFA configuration does the least refinement work; removing the
    # variance-based selection hurts on a dataset whose energy sits in higher
    # coefficients; MESSI (fixed Gaussian bins on PAA) does the most work.
    assert work["SOFA (EW + VAR)"] <= work["SOFA EW, no VAR"]
    assert work["SOFA (EW + VAR)"] <= work["MESSI (SAX)"]
    assert work["MESSI (SAX)"] >= max(work["SOFA (EW + VAR)"], work["SOFA ED + VAR"])

    sofa = variants["SOFA (EW + VAR)"]
    benchmark(lambda: sofa.nearest_neighbor(queries[0]))
