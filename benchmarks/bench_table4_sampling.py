"""Table IV — effect of the MCB sampling rate on query times.

The paper varies the fraction of the data SFA samples to learn its quantization
bins (0.1 % to 20 %) and finds that query times stabilise around 1 %, the
default.  This benchmark reproduces the sweep (the scaled-down datasets need
proportionally larger fractions for the sample to contain more than a handful
of series, so the sweep covers 1 % to 100 %).
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, report

from repro.evaluation.reporting import format_table
from repro.index.sofa import SofaIndex

SAMPLING_RATES = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def test_table4_sampling_rate(sweep_suite, benchmark):
    rows = []
    means = {}
    for rate in SAMPLING_RATES:
        all_times = []
        for name, (index_set, queries) in sweep_suite.items():
            index = SofaIndex(leaf_size=bench_leaf_size(), sample_fraction=rate).build(index_set)
            for query in queries.values:
                start = time.perf_counter()
                index.nearest_neighbor(query)
                all_times.append(time.perf_counter() - start)
        mean_ms = 1000.0 * float(np.mean(all_times))
        median_ms = 1000.0 * float(np.median(all_times))
        means[rate] = mean_ms
        rows.append([f"{100 * rate:.0f}%", mean_ms, median_ms])

    report("Table IV — SOFA query times (ms) by MCB sampling rate",
           format_table(["sampling", "mean", "median"], rows, float_format="{:.2f}"))

    # Paper shape: once the sample is large enough the curve flattens — the
    # largest sampling rate is not substantially better than a moderate one,
    # and no setting is catastrophically worse than the best.
    best = min(means.values())
    assert means[1.0] <= 2.0 * means[0.25] + 0.5
    assert max(means.values()) <= 6.0 * best + 0.5

    index_set, queries = next(iter(sweep_suite.values()))
    index = SofaIndex(leaf_size=bench_leaf_size(), sample_fraction=0.25).build(index_set)
    benchmark(lambda: index.nearest_neighbor(queries[0]))
