"""Figure 12 — SOFA's query time relative to MESSI per dataset (MESSI = 100 %).

The paper sorts the 17 datasets by SOFA's relative query time and finds
improvements ranging from ~2.7 % of MESSI's time (a 38x speed-up, on LenDB) to
~87 % (a modest gain), with the high-frequency datasets on the extreme left.
This benchmark reproduces the per-dataset relative times at 18 cores.
"""

from __future__ import annotations

import numpy as np

from common import report

from repro.datasets.registry import high_frequency_names
from repro.evaluation.reporting import format_table
from repro.index.sofa import SofaIndex


def _mean_exact_distances(index, queries) -> float:
    return float(np.mean([index.nearest_neighbor(query).stats.exact_distances
                          for query in queries.values]))


def test_fig12_relative_query_time(workload_1nn, benchmark_suite, benchmark):
    from repro.index.messi import MessiIndex

    cores = 18
    rows = []
    relative_times = {}
    relative_work = {}
    for dataset, (index_set, queries) in benchmark_suite.items():
        sofa = workload_1nn.query_record(dataset, "SOFA", cores).mean_time
        messi = workload_1nn.query_record(dataset, "MESSI", cores).mean_time
        relative = sofa / messi if messi > 0 else 1.0
        relative_times[dataset] = relative
        # Work ratio: exact-distance computations per query, the scale-free
        # driver of the paper's time ratios (the fixed per-query costs that
        # dominate at reproduction scale cancel out of this metric).
        sofa_work = _mean_exact_distances(SofaIndex(leaf_size=100).build(index_set), queries)
        messi_work = _mean_exact_distances(MessiIndex(leaf_size=100).build(index_set), queries)
        work_ratio = sofa_work / max(messi_work, 1.0)
        relative_work[dataset] = work_ratio
        rows.append([dataset, 100.0 * relative, 100.0 * work_ratio,
                     1000.0 * sofa, 1000.0 * messi,
                     dataset in high_frequency_names()])

    rows.sort(key=lambda row: row[1])
    report("Figure 12 — SOFA relative to MESSI (18 cores, lower is better)",
           format_table(["dataset", "relative time %", "relative exact-dist work %",
                         "SOFA ms", "MESSI ms", "high-freq"],
                        rows, float_format="{:.1f}"))

    # Paper shape: the best-case improvement is large, SOFA is not slower on
    # average, SOFA's refinement work is below MESSI's on average, and
    # high-frequency datasets dominate the top of the ranking.  The *work*
    # ratio carries the best-case assertion: it is scale-free and immune to
    # engine micro-optimizations, whereas the wall-clock ratio compressed
    # toward 1 when the refinement loops got cheaper (PR 3 hoisting) because
    # the remaining fixed per-query costs are shared by both methods at
    # reproduction scale — the time bound is kept as a looser sanity check.
    times = np.array(list(relative_times.values()))
    work = np.array(list(relative_work.values()))
    assert work.min() < 0.1
    assert times.min() < 0.8
    assert times.mean() <= 1.2
    assert work.mean() < 1.0
    top_five = [row[0] for row in rows[:5]]
    assert sum(1 for name in top_five if name in high_frequency_names()) >= 2

    index_set, queries = benchmark_suite["LenDB"]
    sofa = SofaIndex(leaf_size=100).build(index_set)
    benchmark(lambda: sofa.nearest_neighbor(queries[0]))
