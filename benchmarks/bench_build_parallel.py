"""Vectorized + multi-worker index construction — the build pipeline's contract.

Not a paper table: this benchmark guards the construction-speed promises of
the two-stage parallel build in :mod:`repro.index.tree`:

* the vectorized frontier builder must construct the index at least 2x faster
  than the seed recursive builder at the full benchmark scale (4000 series);
  reduced smoke runs only guard against outright regressions;
* a multi-worker build must beat the single-worker build on a multi-core
  machine; on a single hardware core (where threads cannot help by
  construction) it must at least stay within a small dispatch-overhead bound;
* every configuration must produce the *same index*: identical leaf-directory
  arrays and identical ``knn_batch`` answers, asserted at every scale.
"""

from __future__ import annotations

import time

import numpy as np

from common import available_cores, bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

DATASETS = ("LenDB", "SIFT1b")
INDEXES = {"SOFA": SofaIndex, "MESSI": MessiIndex}
K = 10
NUM_QUERIES = 8
REPEATS = 3

#: Required recursive/vectorized build-time ratio at the full benchmark scale.
FULL_SCALE_SPEEDUP = 2.0
#: Scale at which the full speedup requirement applies (smaller smoke runs
#: only guard against outright regressions).
FULL_SCALE_SERIES = 4000
SMOKE_SPEEDUP = 1.2
#: On a single hardware core threads cannot beat the inline build; bound the
#: acceptable pool-dispatch overhead instead (measured 1.0-1.35x; the bound
#: leaves room for scheduler noise while still catching a regression to
#: per-item executor dispatch, which costs far more on thousands of subtrees).
SINGLE_CORE_OVERHEAD = 1.6
PARALLEL_WORKERS = 4


def _median_build(index_cls, builder: str, num_workers: int, index_set):
    times = []
    index = None
    for _ in range(REPEATS):
        index = index_cls(leaf_size=bench_leaf_size(), builder=builder)
        start = time.perf_counter()
        index.build(index_set, num_workers=num_workers)
        times.append(time.perf_counter() - start)
    return float(np.median(times)), index


def _assert_same_index(reference, candidate, queries) -> None:
    """Directory arrays and batched answers must be bit-identical."""
    for attribute in ("_leaf_lower", "_leaf_upper", "_series_lower",
                      "_series_upper", "_series_rows", "_leaf_sizes"):
        assert np.array_equal(getattr(reference.tree, attribute),
                              getattr(candidate.tree, attribute)), attribute
    for expected, actual in zip(reference.knn_batch(queries, k=K),
                                candidate.knn_batch(queries, k=K)):
        assert np.array_equal(expected.indices, actual.indices)
        assert np.array_equal(expected.distances, actual.distances)


def test_build_parallel(benchmark):
    num_series = bench_num_series()
    full_scale = num_series >= FULL_SCALE_SERIES
    required_speedup = FULL_SCALE_SPEEDUP if full_scale else SMOKE_SPEEDUP
    multi_core = available_cores() >= 2

    rows = []
    failures = []
    representative = None
    for offset, name in enumerate(DATASETS):
        dataset = load_dataset(name, num_series=num_series + NUM_QUERIES,
                               seed=700 + offset)
        index_set, queries = dataset.split(NUM_QUERIES,
                                           rng=np.random.default_rng(offset))
        for label, index_cls in INDEXES.items():
            seed_seconds, seed_index = _median_build(index_cls, "recursive", 1,
                                                     index_set)
            vec1_seconds, vec1_index = _median_build(index_cls, "vectorized", 1,
                                                     index_set)
            vec4_seconds, vec4_index = _median_build(index_cls, "vectorized",
                                                     PARALLEL_WORKERS, index_set)

            # Identical answers at every scale, whatever the builder/workers.
            _assert_same_index(seed_index, vec1_index, queries.values)
            _assert_same_index(seed_index, vec4_index, queries.values)

            speedup = seed_seconds / vec1_seconds
            parallel_ratio = vec4_seconds / vec1_seconds
            rows.append([f"{name}/{label}", f"{seed_seconds * 1e3:.1f}",
                         f"{vec1_seconds * 1e3:.1f}", f"{vec4_seconds * 1e3:.1f}",
                         f"{speedup:.2f}x", f"{parallel_ratio:.2f}"])

            if speedup < required_speedup:
                failures.append(
                    f"{name}/{label}: vectorized build is only {speedup:.2f}x "
                    f"faster than the seed recursive build "
                    f"(required: {required_speedup:.1f}x at {num_series} series)")
            if full_scale and multi_core:
                if vec4_seconds >= vec1_seconds:
                    failures.append(
                        f"{name}/{label}: {PARALLEL_WORKERS}-worker build "
                        f"({vec4_seconds * 1e3:.1f} ms) is not faster than "
                        f"1-worker ({vec1_seconds * 1e3:.1f} ms)")
            elif parallel_ratio > SINGLE_CORE_OVERHEAD:
                failures.append(
                    f"{name}/{label}: {PARALLEL_WORKERS}-worker build overhead "
                    f"{parallel_ratio:.2f}x exceeds the "
                    f"{SINGLE_CORE_OVERHEAD:.2f}x bound")
            if representative is None:
                representative = (index_cls, index_set)

    cores = available_cores()
    report(f"Parallel build: seed recursive vs vectorized, 1 vs "
           f"{PARALLEL_WORKERS} workers ({num_series} series, "
           f"leaf {bench_leaf_size()}, {cores} hardware core(s))",
           format_table(["index", "seed ms", "vec x1 ms",
                         f"vec x{PARALLEL_WORKERS} ms", "vec speedup",
                         f"x{PARALLEL_WORKERS}/x1"], rows))
    assert not failures, "\n".join(failures)

    index_cls, index_set = representative
    benchmark(lambda: index_cls(leaf_size=bench_leaf_size()).build(
        index_set, num_workers=PARALLEL_WORKERS))
