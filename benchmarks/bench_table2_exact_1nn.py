"""Table II — mean and median 1-NN query time per method and core count.

The paper's headline result: over the 17-dataset mixed workload SOFA answers
exact 1-NN queries fastest at every core count, MESSI second among the index
methods, FAISS in between, and the UCR-suite scan an order of magnitude slower.
This benchmark reproduces the table with simulated core counts on the
scaled-down datasets; absolute milliseconds differ from the paper's server, but
the method ordering is asserted.
"""

from __future__ import annotations

from common import CORE_COUNTS, report

from repro.evaluation.reporting import format_table
from repro.evaluation.workloads import METHODS
from repro.index.sofa import SofaIndex


def test_table2_exact_1nn(workload_1nn, benchmark_suite, benchmark):
    rows = []
    summary = {}
    for method in ("FAISS", "MESSI", "SOFA", "UCR-SUITE"):
        for cores in CORE_COUNTS:
            timings = workload_1nn.mean_query_times(method, cores, k=1)
            stats = timings.as_milliseconds()
            summary[(method, cores)] = stats
            rows.append([method, cores, stats["median_ms"], stats["mean_ms"]])

    report("Table II — 1-NN query times (ms) over the 17-dataset mixed workload",
           format_table(["method", "cores", "median", "mean"], rows,
                        float_format="{:.2f}"))

    # Paper shape: SOFA is faster than MESSI and than the UCR-suite scan at
    # every core count.  (The paper also beats FAISS; at reproduction scale the
    # BLAS-backed brute force has almost no per-query overhead, so that margin
    # is not asserted — see EXPERIMENTS.md.)
    for cores in CORE_COUNTS:
        sofa = summary[("SOFA", cores)]["mean_ms"]
        assert sofa <= summary[("MESSI", cores)]["mean_ms"]
        assert sofa <= summary[("UCR-SUITE", cores)]["mean_ms"]

    # All methods answered every query exactly (verified against each other by
    # the test suite); here we only check the records exist for all methods.
    assert {record.method for record in workload_1nn.query_records} == set(METHODS)

    index_set, queries = benchmark_suite["LenDB"]
    sofa = SofaIndex(leaf_size=100).build(index_set)
    benchmark(lambda: sofa.nearest_neighbor(queries[0]))
