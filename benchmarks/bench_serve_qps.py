"""Serving throughput — micro-batched vs naive per-request ``/knn``.

Not a paper table: this benchmark guards the serving layer's reason to exist.
The batched engine is several times faster per query than per-query ``knn``,
but a server answers each client on its own thread — the advantage survives
the HTTP boundary only if concurrent requests are coalesced back into batches
(:class:`repro.serve.batching.KnnBatcher`).  The same request storm is fired
at two servers over real sockets:

* **batched** — ``ServeConfig(batching=True)``: requests coalesce into shared
  ``knn_batch`` calls;
* **naive** — ``ServeConfig(batching=False)``: every request pays a private
  per-query ``knn`` call, the baseline any framework-of-the-week would ship.

At the default benchmark scale the batched endpoint must sustain at least
2x the naive QPS (reduced smoke runs use a looser regression bound).  Both
servers must answer bit-identically to the engine, and a tiny-``timeout_s``
request must come back as a well-formed 200 with ``timed_out: true`` — the
degraded-answer contract, never an untyped 500.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np

from common import available_cores, bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.sofa import SofaIndex
from repro.serve import IndexServer, SearchApp, ServeConfig

K = 10
NUM_QUERIES = 64
REPEATS = 3

#: Required batched/naive serving QPS ratio at the default benchmark scale.
FULL_SCALE_SPEEDUP = 2.0
#: Scale at which the full speedup requirement applies; reduced smoke runs
#: only guard against the batching path being an outright regression.
FULL_SCALE_SERIES = 4000
SMOKE_SPEEDUP = 1.1


def _storm(host: str, port: int, bodies: "list[bytes]", num_clients: int,
           requests_per_client: int) -> "tuple[float, list]":
    """Fire the request storm from persistent connections; return (QPS, errors)."""
    errors: list = []
    barrier = threading.Barrier(num_clients + 1)

    def client(worker: int) -> None:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        barrier.wait()
        try:
            for request_index in range(requests_per_client):
                body = bodies[(worker + request_index) % len(bodies)]
                connection.request(
                    "POST", "/bench/knn", body,
                    {"Content-Type": "application/json"})
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200:
                    errors.append((response.status, payload[:200]))
                    return
        except OSError as error:  # pragma: no cover - diagnostics only
            errors.append(("connection", repr(error)))
        finally:
            connection.close()

    threads = [threading.Thread(target=client, args=(worker,))
               for worker in range(num_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return (num_clients * requests_per_client) / elapsed, errors


def _serve_and_measure(index: SofaIndex, batching: bool, bodies: "list[bytes]",
                       num_clients: int, requests_per_client: int) -> float:
    app = SearchApp(ServeConfig(max_k=K, batching=batching))
    app.add_index("bench", index)
    with IndexServer(app) as server:
        # Warm the path (connection setup, first-batch laziness) off the clock.
        qps, errors = _storm(server.host, server.port, bodies[:4],
                             min(2, num_clients), 2)
        assert not errors, errors[:3]
        samples = []
        for _ in range(REPEATS):
            qps, errors = _storm(server.host, server.port, bodies,
                                 num_clients, requests_per_client)
            assert not errors, errors[:3]
            samples.append(qps)
    return float(np.median(samples))


def test_serve_qps(benchmark):
    num_series = bench_num_series()
    dataset = load_dataset("SIFT1b", num_series=num_series + NUM_QUERIES,
                           seed=700)
    index_set, queries = dataset.split(NUM_QUERIES,
                                       rng=np.random.default_rng(7))
    index = SofaIndex(leaf_size=bench_leaf_size()).build(index_set)

    bodies = [json.dumps({"query": query.tolist(), "k": K}).encode()
              for query in queries.values]
    num_clients = max(4, min(12, available_cores()))
    requests_per_client = max(16, 256 // num_clients)

    # ---- correctness first: served answers are the engine's answers.
    app = SearchApp(ServeConfig(max_k=K, batching=True))
    app.add_index("bench", index)
    with IndexServer(app) as server:
        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=60)
        for query, body in zip(queries.values[:8], bodies[:8]):
            connection.request("POST", "/bench/knn", body,
                               {"Content-Type": "application/json"})
            response = connection.getresponse()
            answer = json.loads(response.read())
            assert response.status == 200
            expected = index.knn(query, k=K)
            assert answer["ids"] == [int(row) for row in expected.indices]
            assert answer["distances"] == [float(d) for d in expected.distances]
        # The degraded-answer contract: an expired budget is a well-formed
        # 200 with timed_out=true, never an untyped 500.
        tiny = json.dumps({"query": queries.values[0].tolist(), "k": K,
                           "timeout_s": 1e-9}).encode()
        connection.request("POST", "/bench/knn", tiny,
                           {"Content-Type": "application/json"})
        response = connection.getresponse()
        degraded = json.loads(response.read())
        assert response.status == 200
        assert degraded["timed_out"] is True
        connection.close()

    # ---- throughput: the same storm against both serving modes.
    naive_qps = _serve_and_measure(index, False, bodies, num_clients,
                                   requests_per_client)
    batched_qps = _serve_and_measure(index, True, bodies, num_clients,
                                     requests_per_client)
    speedup = batched_qps / naive_qps

    report(f"Serving QPS: micro-batched vs naive per-request /knn "
           f"(k={K}, {num_series} series, {num_clients} clients)",
           format_table(
               ["mode", "QPS", "speedup"],
               [["naive per-request", naive_qps, 1.0],
                ["micro-batched", batched_qps, speedup]],
               float_format="{:.1f}"))

    required = (FULL_SCALE_SPEEDUP if num_series >= FULL_SCALE_SERIES
                else SMOKE_SPEEDUP)
    assert speedup >= required, (
        f"micro-batched serving reached only {speedup:.2f}x the naive QPS "
        f"(required {required}x at {num_series} series)")
