"""Figure 8 — structural properties of the MESSI and SOFA indexes.

The paper compares average tree depth, average leaf fill and the number of
root subtrees between MESSI and SOFA and finds them broadly similar (SOFA
slightly deeper, slightly emptier leaves).  This benchmark reports the same
three statistics averaged over the benchmark datasets.
"""

from __future__ import annotations

import numpy as np

from common import report

from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex
from repro.index.stats import compute_structure_stats


def test_fig08_index_properties(sweep_suite, benchmark):
    # A smaller leaf capacity than the query benchmarks use, so that node
    # splits actually happen at reproduction scale and depth/fill are
    # meaningful (the paper uses 20k-series leaves on 100M-series datasets).
    leaf_size = 16
    per_method = {"MESSI": [], "SOFA": []}
    for name, (index_set, _) in sweep_suite.items():
        messi = MessiIndex(leaf_size=leaf_size).build(index_set)
        sofa = SofaIndex(leaf_size=leaf_size).build(index_set)
        per_method["MESSI"].append(compute_structure_stats(messi.tree))
        per_method["SOFA"].append(compute_structure_stats(sofa.tree))

    rows = []
    for method, stats_list in per_method.items():
        rows.append([
            method,
            float(np.mean([stats.average_depth for stats in stats_list])),
            float(np.mean([stats.max_depth for stats in stats_list])),
            float(np.mean([stats.average_leaf_size for stats in stats_list])),
            float(np.mean([stats.num_subtrees for stats in stats_list])),
            float(np.mean([stats.num_leaves for stats in stats_list])),
        ])

    report("Figure 8 — index structure (mean over datasets)",
           format_table(
               ["method", "avg depth", "max depth", "avg leaf size",
                "root subtrees", "leaves"],
               rows))

    # Both indexes must have comparable structure (within an order of magnitude).
    messi_row = next(row for row in rows if row[0] == "MESSI")
    sofa_row = next(row for row in rows if row[0] == "SOFA")
    assert 0.1 < sofa_row[1] / messi_row[1] < 10.0
    assert 0.1 < sofa_row[3] / messi_row[3] < 10.0

    index_set = next(iter(sweep_suite.values()))[0]
    sofa = SofaIndex(leaf_size=leaf_size).build(index_set)
    benchmark(lambda: compute_structure_stats(sofa.tree))
