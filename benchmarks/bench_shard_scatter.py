"""Sharded scatter-gather overhead — healthy and degraded query latency.

Not a paper table: this benchmark guards the fault-tolerance layer's price
tag.  Sharding exists for the failure boundary (quarantine one broken shard,
keep answering from the rest), and that boundary is only affordable if

* a **healthy** 4-shard index answers within a bounded constant factor of
  the unsharded engine, and
* a **degraded** index — one shard quarantined — is *not slower* than the
  healthy one beyond a single retry budget: a quarantined shard must be
  skipped outright, never re-probed on the query path.

On the healthy factor: each shard pays the engine's fixed per-query cost
(z-normalization, the query's DFT and per-tree SFA word, heap setup) on top
of its share of the scan, and those per-shard searches serialize under the
GIL — measured, a 4-shard scatter lands at 2-5x the unsharded engine at
harness scales (a sequential shared-best-so-far scatter measures the same,
so it is the duplicated fixed cost, not the thread dispatch).  The bound
here is therefore a *regression tripwire*, not a performance claim: it
catches order-of-magnitude accidents — an engine reload per query, a probe
or retry sneaking onto the healthy path, a lost shared-best-so-far — while
tolerating the inherent constant.

Both modes must also answer exactly: healthy bit-identical to the unsharded
reference, degraded bit-identical to an index built over the surviving
shards' rows alone.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, bench_num_series, bench_num_queries, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.shard_health import HealthPolicy, RetryPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

K = 10
NUM_SHARDS = 4
REPEATS = 5

#: Healthy 4-shard latency tripwire, as a multiple of unsharded latency, at
#: the default benchmark scale (measured 2-5x across runs; see the module
#: docstring for why).  Reduced smoke runs keep a looser bound — with a few
#: hundred series per shard, fixed per-query costs dominate entirely.
FULL_SCALE_OVERHEAD = 6.0
FULL_SCALE_SERIES = 4000
SMOKE_OVERHEAD = 8.0

#: The degraded path may cost at most one retry budget (every backoff the
#: policy could possibly sleep, at its jittered maximum) over the healthy
#: path, per query.  A quarantined shard that sneaks retries back into the
#: query path blows straight through this.
RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.002, backoff_cap_s=0.01)


def _retry_budget_s(policy: RetryPolicy) -> float:
    return sum(policy.backoff_s(attempt) * (1.0 + policy.jitter)
               for attempt in range(policy.max_attempts))


def _median_latency_s(engine, queries: np.ndarray) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for query in queries:
            engine.knn(query, k=K)
        samples.append((time.perf_counter() - start) / len(queries))
    return float(np.median(samples))


def test_shard_scatter_overhead(benchmark, tmp_path):
    num_series = bench_num_series()
    num_queries = max(8, bench_num_queries())
    dataset = load_dataset("Astro", num_series=num_series + num_queries,
                           seed=880)
    index_set, query_set = dataset.split(num_queries,
                                         rng=np.random.default_rng(88))
    rows, queries = index_set.values, query_set.values
    leaf_size = bench_leaf_size()

    def factory() -> SofaIndex:
        return SofaIndex(leaf_size=leaf_size)

    unsharded = factory().build(rows)
    sharded = ShardedIndex.build(
        rows, tmp_path / "shards", num_shards=NUM_SHARDS,
        index_factory=factory, retry=RETRY,
        health=HealthPolicy(auto_probe=False))

    # ---- correctness first: healthy sharded == unsharded, bit for bit.
    for query in queries:
        expected = unsharded.knn(query, k=K)
        observed = sharded.knn(query, k=K)
        np.testing.assert_array_equal(observed.indices, expected.indices)
        np.testing.assert_array_equal(observed.distances, expected.distances)
        assert observed.stats.partial is False

    # ---- healthy latency: the price of the scatter-gather layer.
    unsharded_s = _median_latency_s(unsharded, queries)
    healthy_s = _median_latency_s(sharded, queries)

    # ---- degrade: quarantine one shard the way a corrupt load would.
    victim = NUM_SHARDS - 1
    with sharded._shards[victim].lock:
        sharded._shards[victim].engine.close()
        sharded._shards[victim].engine = None
    from repro.core.errors import CorruptionError
    sharded._board.record_persistent(
        victim, CorruptionError("injected for the benchmark"))

    shard_rows = sharded._shards[victim].globals_map
    keep = np.setdiff1d(np.arange(rows.shape[0]), shard_rows)
    survivor_reference = factory().build(rows[keep])
    for query in queries:
        expected = survivor_reference.knn(query, k=K)
        observed = sharded.knn(query, k=K)
        np.testing.assert_array_equal(observed.indices, keep[expected.indices])
        np.testing.assert_array_equal(observed.distances, expected.distances)
        assert observed.stats.partial is True

    degraded_s = _median_latency_s(sharded, queries)
    sharded.close()

    overhead = healthy_s / unsharded_s
    budget_s = _retry_budget_s(RETRY)
    report(f"Sharded scatter-gather latency (k={K}, {num_series} series, "
           f"{NUM_SHARDS} shards)",
           format_table(
               ["mode", "ms/query", "vs unsharded"],
               [["unsharded", unsharded_s * 1e3, 1.0],
                [f"sharded x{NUM_SHARDS} healthy", healthy_s * 1e3, overhead],
                [f"sharded x{NUM_SHARDS} degraded (1 down)", degraded_s * 1e3,
                 degraded_s / unsharded_s]],
               float_format="{:.3f}"))

    bound = (FULL_SCALE_OVERHEAD if num_series >= FULL_SCALE_SERIES
             else SMOKE_OVERHEAD)
    assert overhead <= bound, (
        f"healthy {NUM_SHARDS}-shard search costs {overhead:.2f}x the "
        f"unsharded engine (bound {bound}x at {num_series} series)")
    assert degraded_s <= healthy_s + budget_s, (
        f"degraded search ({degraded_s * 1e3:.3f} ms/query) exceeds healthy "
        f"({healthy_s * 1e3:.3f} ms/query) by more than one retry budget "
        f"({budget_s * 1e3:.3f} ms) — is the quarantined shard being "
        f"re-probed on the query path?")
