"""Ablation (Section IV-H) — SIMD-style lower-bound kernel implementations.

The paper's Algorithm 3 replaces per-coefficient branching with masked,
chunked vector operations plus per-chunk early abandoning.  This benchmark
compares the three kernel implementations shipped in ``repro.core.simd`` —
the scalar reference, the chunked mask-based reproduction of Algorithm 3 and
the fully vectorized batch kernel — on identical inputs, and verifies they
agree.
"""

from __future__ import annotations

import time

import numpy as np

from common import report

from repro.core.simd import (
    batch_lower_bound,
    chunked_masked_lower_bound,
    scalar_lower_bound,
    vectorized_lower_bound,
)
from repro.evaluation.reporting import format_table


def _timed(function, repetitions: int = 200) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        function()
    return (time.perf_counter() - start) / repetitions


def test_ablation_simd_lower_bound_kernels(benchmark):
    rng = np.random.default_rng(0)
    dims = 16
    num_candidates = 2000
    query = rng.standard_normal(dims)
    centers = rng.standard_normal((num_candidates, dims))
    widths = rng.uniform(0.1, 1.0, (num_candidates, dims))
    lower = centers - widths
    upper = centers + widths
    weights = np.full(dims, 2.0)

    reference = batch_lower_bound(query, lower, upper, weights)
    singles = np.array([vectorized_lower_bound(query, lower[i], upper[i], weights)
                        for i in range(50)])
    assert np.allclose(reference[:50], singles)
    chunked = np.array([chunked_masked_lower_bound(query, lower[i], upper[i], weights)
                        for i in range(50)])
    scalars = np.array([scalar_lower_bound(query, lower[i], upper[i], weights)
                        for i in range(50)])
    assert np.allclose(chunked, singles)
    assert np.allclose(scalars, singles)

    rows = [
        ["scalar loop (per word)", 1e6 * _timed(
            lambda: scalar_lower_bound(query, lower[0], upper[0], weights))],
        ["chunked masks, Algorithm 3 (per word)", 1e6 * _timed(
            lambda: chunked_masked_lower_bound(query, lower[0], upper[0], weights))],
        ["vectorized (per word)", 1e6 * _timed(
            lambda: vectorized_lower_bound(query, lower[0], upper[0], weights))],
        [f"batched over {num_candidates} words (per word)", 1e6 * _timed(
            lambda: batch_lower_bound(query, lower, upper, weights)) / num_candidates],
    ]
    report("SIMD lower-bound ablation — microseconds per candidate word",
           format_table(["kernel", "us / word"], rows))

    # The batched kernel (the production path inside leaves) must be far
    # cheaper per word than any per-word call.
    assert rows[3][1] < rows[0][1]

    benchmark(lambda: batch_lower_bound(query, lower, upper, weights))
