"""Figure 10 — distribution of 1-NN query times across datasets by core count.

The paper's box plots show that SOFA has the lowest median query time at every
core count, that the tree indexes have a wide spread across datasets (easy
high-frequency datasets versus hard ones), and that the scan baselines are
tightly clustered.  This benchmark reports the quartiles of the per-dataset
mean query times for each method and core count.
"""

from __future__ import annotations

import numpy as np

from common import CORE_COUNTS, report

from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex


def _per_dataset_means(workload, method, cores):
    means = {}
    for record in workload.query_records:
        if record.method == method and record.cores == cores and record.k == 1:
            means[record.dataset] = 1000.0 * record.mean_time
    return np.array(list(means.values()))


def test_fig10_core_scaling(workload_1nn, benchmark_suite, benchmark):
    rows = []
    medians = {}
    spreads = {}
    for method in ("FAISS", "MESSI", "SOFA", "UCR-SUITE"):
        for cores in CORE_COUNTS:
            times = _per_dataset_means(workload_1nn, method, cores)
            quartiles = np.percentile(times, [25, 50, 75])
            medians[(method, cores)] = quartiles[1]
            spreads[(method, cores)] = (np.max(times) / max(np.min(times), 1e-9))
            rows.append([method, cores, float(times.min()), float(quartiles[0]),
                         float(quartiles[1]), float(quartiles[2]), float(times.max())])

    report("Figure 10 — per-dataset 1-NN query time distribution (ms)",
           format_table(["method", "cores", "min", "q25", "median", "q75", "max"],
                        rows, float_format="{:.2f}"))

    # Paper shape: SOFA has the lowest median everywhere; tree indexes show a
    # wider spread across datasets than the scan baselines.
    for cores in CORE_COUNTS:
        assert medians[("SOFA", cores)] <= medians[("MESSI", cores)]
        assert medians[("SOFA", cores)] <= medians[("UCR-SUITE", cores)]
        assert max(spreads[("SOFA", cores)], spreads[("MESSI", cores)]) >= \
            spreads[("UCR-SUITE", cores)] * 0.5

    index_set, queries = benchmark_suite["SCEDC"]
    messi = MessiIndex(leaf_size=100).build(index_set)
    benchmark(lambda: messi.nearest_neighbor(queries[0]))
