"""Figure 10 — distribution of 1-NN query times across datasets by core count.

The paper's box plots show how single-query latency falls as cores are added
to one query's refinement workers, with SOFA keeping the lowest median at
every core count.  Earlier revisions of this benchmark *replayed* the
experiment through the virtual-core simulator over single-threaded work-item
timings; with the intra-query parallel engine the experiment is now
**measured**: the same exact 1-NN queries are answered at several real
worker counts (`knn(..., num_workers=n)` draining each query's leaf queue
against a shared best-so-far) and the distribution of per-dataset mean query
times is reported per method and worker count.

Asserted shape (robust on any hardware, including single-core CI runners
where threads cannot reduce wall clock):

* every worker count returns bit-identical answers;
* SOFA performs no more refinement work than MESSI across the dataset set
  (median of per-dataset exact-distance counts) — the pruning advantage that
  produces the paper's lowest-median-everywhere curve.

Absolute speedups are hardware-dependent and are gated separately by
``bench_query_parallel.py``.
"""

from __future__ import annotations

import time

import numpy as np

from common import bench_leaf_size, report

from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

#: Real worker counts measured per query (the paper sweeps 9/18/36 cores on
#: a 40-core server; reproduction hardware is smaller).
WORKER_COUNTS = (1, 2, 4)
INDEXES = {"MESSI": MessiIndex, "SOFA": SofaIndex}
K = 1


def test_fig10_core_scaling(sweep_suite, benchmark):
    mean_times: dict[tuple[str, int], dict[str, float]] = {}
    mean_work: dict[str, dict[str, float]] = {}
    representative = None
    for name, (index_set, queries) in sweep_suite.items():
        for label, index_cls in INDEXES.items():
            index = index_cls(leaf_size=bench_leaf_size()).build(index_set)
            reference = None
            for workers in WORKER_COUNTS:
                # Warm the engine (and its persistent pool) outside the clock.
                index.knn(queries.values[0], k=K, num_workers=workers)
                start = time.perf_counter()
                results = [index.knn(query, k=K, num_workers=workers)
                           for query in queries.values]
                elapsed = (time.perf_counter() - start) / queries.num_series
                mean_times.setdefault((label, workers), {})[name] = 1000.0 * elapsed
                if reference is None:
                    reference = results
                    mean_work.setdefault(label, {})[name] = float(np.mean(
                        [result.stats.exact_distances for result in results]))
                else:
                    # The core-scaling knob must be purely a wall-clock knob.
                    for expected, actual in zip(reference, results):
                        assert np.array_equal(expected.indices, actual.indices)
                        assert np.array_equal(expected.distances,
                                              actual.distances)
            if representative is None:
                representative = index, queries.values

    rows = []
    for label in INDEXES:
        for workers in WORKER_COUNTS:
            times = np.array(list(mean_times[(label, workers)].values()))
            quartiles = np.percentile(times, [25, 50, 75])
            rows.append([label, workers, float(times.min()), float(quartiles[0]),
                         float(quartiles[1]), float(quartiles[2]),
                         float(times.max())])
    report("Figure 10 — per-dataset 1-NN query time distribution by worker "
           "count (ms, measured)",
           format_table(["method", "workers", "min", "q25", "median", "q75",
                         "max"], rows, float_format="{:.2f}"))

    # Paper shape: SOFA's tighter lower bounds mean less refinement work than
    # MESSI on the same queries — the scale-free driver of its lower medians.
    sofa_work = float(np.median(list(mean_work["SOFA"].values())))
    messi_work = float(np.median(list(mean_work["MESSI"].values())))
    assert sofa_work <= messi_work

    index, query_values = representative
    benchmark(lambda: index.knn(query_values[0], k=K,
                                num_workers=WORKER_COUNTS[-1]))
