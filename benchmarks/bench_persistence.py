"""Cold rebuild vs warm snapshot load — the persistence subsystem's contract.

Not a paper table: this benchmark guards the warm-start promise of
:mod:`repro.index.persistence`.  A process that opens a saved snapshot with
``load(path, mmap=True)`` must reach a query-ready index at least 3x faster
than rebuilding the same index from the raw series (asserted at the default
benchmark scale of 4000 series; reduced smoke runs use a looser regression
bound) — and the loaded index must answer queries bit-identically to the
built one, which is asserted at every scale.

The required ratio tracks the build pipeline it is measured against: the gate
was 10x against the seed recursive build (measured 17-27x), and was
recalibrated when the vectorized parallel build (PR 3) made the rebuild
itself several times faster (measured after: 4.7-5.6x, with the warm load's
absolute cost unchanged).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from common import bench_leaf_size, bench_num_series, report

from repro.datasets.registry import load_dataset
from repro.evaluation.reporting import format_table
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

DATASETS = ("LenDB", "SIFT1b")
INDEXES = {"SOFA": SofaIndex, "MESSI": MessiIndex}
K = 10
NUM_QUERIES = 8
BUILD_REPEATS = 3
LOAD_REPEATS = 7

#: Required rebuild/warm-load time ratio at the full benchmark scale
#: (measured against the vectorized build path; see the module docstring).
FULL_SCALE_SPEEDUP = 3.0
#: Scale at which the full speedup requirement applies (smaller smoke runs
#: only guard against outright regressions).
FULL_SCALE_SERIES = 4000
SMOKE_SPEEDUP = 2.0


def _median_seconds(function, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def test_persistence_warm_load(benchmark):
    num_series = bench_num_series()
    required = (FULL_SCALE_SPEEDUP if num_series >= FULL_SCALE_SERIES
                else SMOKE_SPEEDUP)
    rows = []
    speedups = {}
    representative = None
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-persistence-"))
    try:
        for offset, name in enumerate(DATASETS):
            dataset = load_dataset(name, num_series=num_series + NUM_QUERIES,
                                   seed=500 + offset)
            index_set, queries = dataset.split(NUM_QUERIES,
                                               rng=np.random.default_rng(offset))
            for label, index_cls in INDEXES.items():
                # The rebuild baseline is pinned to one worker — the
                # configuration the speedup gate was calibrated against —
                # so an ambient REPRO_NUM_WORKERS cannot shift the ratio.
                index = index_cls(leaf_size=bench_leaf_size()).build(
                    index_set, num_workers=1)
                build_seconds = _median_seconds(
                    lambda: index_cls(leaf_size=bench_leaf_size()).build(
                        index_set, num_workers=1),
                    BUILD_REPEATS)

                path = scratch / f"{name}-{label}"
                start = time.perf_counter()
                index.save(path)
                save_seconds = time.perf_counter() - start

                index_cls.load(path)  # warm the page cache before timing
                load_seconds = _median_seconds(
                    lambda: index_cls.load(path, mmap=True), LOAD_REPEATS)
                eager_seconds = _median_seconds(
                    lambda: index_cls.load(path, mmap=False), LOAD_REPEATS)

                # The loaded index must answer bit-identically at every scale.
                loaded = index_cls.load(path, mmap=True)
                for query in queries.values:
                    built_result = index.knn(query, k=K)
                    loaded_result = loaded.knn(query, k=K)
                    assert np.array_equal(built_result.indices, loaded_result.indices)
                    assert np.array_equal(built_result.distances,
                                          loaded_result.distances)

                speedup = build_seconds / load_seconds
                speedups[(name, label)] = speedup
                rows.append([f"{name}/{label}", f"{build_seconds * 1e3:.1f}",
                             f"{save_seconds * 1e3:.1f}",
                             f"{load_seconds * 1e3:.2f}",
                             f"{eager_seconds * 1e3:.2f}", f"{speedup:.1f}x"])
                if representative is None:
                    representative = (index_cls, path)
    finally:
        table = format_table(
            ["index", "rebuild ms", "save ms", "load(mmap) ms",
             "load(copy) ms", "speedup"], rows)
        report(f"Persistence: cold rebuild vs warm load "
               f"({num_series} series, leaf {bench_leaf_size()})", table)
        if representative is not None:
            index_cls, path = representative
            benchmark(lambda: index_cls.load(path, mmap=True))
        shutil.rmtree(scratch, ignore_errors=True)

    for (name, label), speedup in speedups.items():
        assert speedup >= required, (
            f"warm load of {name}/{label} is only {speedup:.1f}x faster than "
            f"rebuild (required: {required:.0f}x at {num_series} series)"
        )
