"""Table V — mean TLB on the UCR-like archive for increasing alphabet sizes.

The paper evaluates the tightness of lower bound of SFA (equi-depth /
equi-width, with variance selection) against iSAX on ~120 UCR datasets and
finds SFA ahead at every alphabet size, with the largest margin at small
alphabets.  This benchmark reproduces the table on the synthetic UCR-like
suite.
"""

from __future__ import annotations

from common import report

from repro.datasets.ucr import generate_ucr_like_suite
from repro.evaluation.reporting import format_table
from repro.evaluation.tlb import evaluate_tlb, make_ablation_method, mean_tlb_table, tlb_study

ALPHABETS = (4, 8, 16, 32, 64, 128, 256)
METHODS = ("SFA ED +VAR", "SFA EW +VAR", "iSAX")


def test_table5_tlb_ucr(benchmark):
    suite = generate_ucr_like_suite(num_datasets=21, train_size=120, test_size=15)
    datasets = {entry.name: (entry.train, entry.test) for entry in suite}
    records = tlb_study(datasets, alphabet_sizes=ALPHABETS, methods=METHODS,
                        word_length=16, max_pairs_per_query=60)
    table = mean_tlb_table(records)

    rows = [[method] + [table[method][alphabet] for alphabet in ALPHABETS]
            for method in METHODS]
    report("Table V — mean TLB on the UCR-like suite by alphabet size",
           format_table(["method"] + [str(alphabet) for alphabet in ALPHABETS], rows))

    # Paper shape: both SFA variants beat iSAX at every alphabet size, and TLB
    # grows monotonically (within noise) with the alphabet size.
    for alphabet in ALPHABETS:
        assert table["SFA EW +VAR"][alphabet] > table["iSAX"][alphabet]
        assert table["SFA ED +VAR"][alphabet] > table["iSAX"][alphabet]
    for method in METHODS:
        assert table[method][256] >= table[method][4]

    entry = suite[0]
    summarization = make_ablation_method("SFA EW +VAR", word_length=16, alphabet_size=64)
    benchmark(lambda: evaluate_tlb(summarization, entry.train, entry.test,
                                   max_pairs_per_query=30))
